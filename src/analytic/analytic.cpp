#include "prophet/analytic/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/uml/sysparams.hpp"
#include "prophet/workload/runtime.hpp"

namespace prophet::analytic {
namespace {

using uml::ActivityDiagram;
using uml::Model;
using uml::Node;
using uml::NodeKind;

/// One `name = expression;` assignment of an associated code fragment.
struct Assignment {
  std::string target;
  expr::ExprPtr value;
};

/// Pre-parsed cost function.
struct ParsedFunction {
  std::vector<std::string> parameters;
  expr::ExprPtr body;
};

/// Pre-parsed variable declaration.
struct ParsedVariable {
  std::string name;
  uml::VariableScope scope = uml::VariableScope::Global;
  uml::VariableType type = uml::VariableType::Real;
  expr::ExprPtr initializer;  // may be null (zero-init)
};

/// Integer-typed model variables truncate on assignment, exactly like the
/// interpreter and the generated C++.
double coerce(uml::VariableType type, double value) {
  if (type == uml::VariableType::Integer) {
    return std::trunc(value);
  }
  return value;
}

/// Splits a code fragment into `name = expr` assignments (interpreter
/// semantics).
std::vector<Assignment> parse_code_fragment(const std::string& text,
                                            const std::string& where) {
  std::vector<Assignment> assignments;
  std::size_t start = 0;
  while (start < text.size()) {
    auto end = text.find(';', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string statement = text.substr(start, end - start);
    start = end + 1;
    const auto first = statement.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      continue;
    }
    const auto last = statement.find_last_not_of(" \t\r\n");
    statement = statement.substr(first, last - first + 1);
    const auto equals = statement.find('=');
    if (equals == std::string::npos || equals + 1 >= statement.size() ||
        statement[equals + 1] == '=') {
      throw AnalyticError("code fragment at " + where + ": statement '" +
                          statement + "' is not an assignment");
    }
    std::string target = statement.substr(0, equals);
    const auto target_end = target.find_last_not_of(" \t\r\n");
    target = target.substr(0, target_end + 1);
    try {
      assignments.push_back(
          {target, expr::parse(statement.substr(equals + 1))});
    } catch (const expr::SyntaxError& error) {
      throw AnalyticError("code fragment at " + where + ": " + error.what());
    }
  }
  return assignments;
}

/// What one step of the abstract process timeline does.  Compute demands
/// a node processor; Busy advances the clock without contending (send
/// overhead, synchronization latency); Send/Recv/Barrier synchronize
/// across processes during replay.
enum class EvKind { Compute, Busy, Send, Recv, Barrier };

struct Event {
  EvKind kind = EvKind::Compute;
  double elapsed = 0;  // wall seconds on this process's critical path
  double demand = 0;   // contended CPU seconds charged to the node
  double bytes = 0;    // Send: payload size handed to the receiver
  int peer = 0;        // Send: destination pid / Recv: source pid
  int tag = 0;         // message tag
};

/// The abstract timeline of one process plus its side demands.
struct WalkResult {
  std::vector<Event> events;
  // Serialized seconds per named critical section (lock-held time).
  std::map<std::string, double> critical_demand;
};

double sum_elapsed(const std::vector<Event>& events) {
  double total = 0;
  for (const auto& event : events) {
    total += event.elapsed;
  }
  return total;
}

double sum_demand(const std::vector<Event>& events) {
  double total = 0;
  for (const auto& event : events) {
    total += event.demand;
  }
  return total;
}

bool compute_only(const std::vector<Event>& events) {
  return std::all_of(events.begin(), events.end(), [](const Event& event) {
    return event.kind == EvKind::Compute || event.kind == EvKind::Busy;
  });
}

workload::CollectiveKind collective_kind(const std::string& stereotype) {
  if (stereotype == uml::stereo::kBroadcast) {
    return workload::CollectiveKind::Broadcast;
  }
  if (stereotype == uml::stereo::kReduce) {
    return workload::CollectiveKind::Reduce;
  }
  if (stereotype == uml::stereo::kAllReduce) {
    return workload::CollectiveKind::AllReduce;
  }
  if (stereotype == uml::stereo::kScatter) {
    return workload::CollectiveKind::Scatter;
  }
  return workload::CollectiveKind::Gather;
}

/// A loop variable binding on the walker's lexical stack.  `read` records
/// whether any expression resolved the name — the loop-collapsing fast
/// path is valid only for bodies that never look at their trip variable.
struct LoopBinding {
  std::string name;
  double value = 0;
  bool read = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Impl: construction-time parsing + per-evaluation state
// ---------------------------------------------------------------------------

struct AnalyticEstimator::Impl {
  std::optional<Model> owned;  // set by the owning constructor
  const Model* model = nullptr;

  // Pre-parsed expressions, keyed by element/edge id and tag name.
  std::map<std::string, std::map<std::string, expr::ExprPtr>> node_exprs;
  std::map<std::string, expr::ExprPtr> guards;  // edge id -> guard
  std::map<std::string, std::vector<Assignment>> fragments;
  std::map<std::string, ParsedFunction> functions;
  std::vector<ParsedVariable> variables;
  std::map<std::string, int> uids;

  /// Mutable state of one evaluate() call (evaluate is const + reentrant;
  /// everything per-run lives here).
  struct EvalState {
    machine::SystemParameters params;
    std::map<std::string, double> globals;  // shared by all process walks
    std::uint64_t elements = 0;             // model elements walked
    std::uint64_t fragments_executed = 0;
    bool pid_queried = false;  // pid/tid resolved during the current walk
    int call_depth = 0;
  };

  explicit Impl(const Model& m) : model(&m) {
    for (const auto& variable : m.variables()) {
      ParsedVariable parsed;
      parsed.name = variable.name;
      parsed.scope = variable.scope;
      parsed.type = variable.type;
      if (!variable.initializer.empty()) {
        parsed.initializer = parse_checked(
            variable.initializer, "initializer of variable " + variable.name);
      }
      variables.push_back(std::move(parsed));
    }
    for (const auto& fn : m.cost_functions()) {
      functions.emplace(
          fn.name,
          ParsedFunction{fn.parameters,
                         parse_checked(fn.body, "cost function " + fn.name)});
    }
    // uid assignment matches the interpreter: explicit `id` tags win, the
    // rest get sequential numbers skipping claimed values.
    std::set<int> claimed;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (auto id = node->tag(uml::tag::kId)) {
          if (const auto* value = std::get_if<std::int64_t>(&*id)) {
            uids[node->id()] = static_cast<int>(*value);
            claimed.insert(static_cast<int>(*value));
          }
        }
      }
    }
    int next = 1;
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        if (uids.find(node->id()) == uids.end()) {
          while (claimed.find(next) != claimed.end()) {
            ++next;
          }
          uids[node->id()] = next;
          claimed.insert(next);
        }
      }
      for (const auto& edge : diagram->edges()) {
        if (edge->has_guard() && !edge->is_else()) {
          guards.emplace(edge->id(), parse_checked(edge->guard(),
                                                   "guard of edge " +
                                                       edge->id()));
        }
      }
    }
    for (const auto& diagram : m.diagrams()) {
      for (const auto& node : diagram->nodes()) {
        for (const auto tag_name : uml::expression_tags(node->stereotype())) {
          if (!node->has_tag(tag_name)) {
            continue;
          }
          const std::string text = node->tag_string(tag_name);
          if (text.empty()) {
            continue;
          }
          node_exprs[node->id()].emplace(
              std::string(tag_name),
              parse_checked(text, "tag '" + std::string(tag_name) +
                                      "' of node " + node->id()));
        }
        if (node->has_tag(uml::tag::kCode)) {
          const std::string code = node->tag_string(uml::tag::kCode);
          if (!code.empty()) {
            fragments.emplace(node->id(),
                              parse_code_fragment(code, "node " + node->id()));
          }
        }
        if ((node->kind() == NodeKind::Activity ||
             node->kind() == NodeKind::Loop) &&
            m.diagram(node->subdiagram_id()) == nullptr) {
          throw AnalyticError("node " + node->id() +
                              " references unknown diagram '" +
                              node->subdiagram_id() + "'");
        }
      }
    }
    if (m.main_diagram() == nullptr) {
      throw AnalyticError("model has no resolvable main diagram");
    }
  }

  static expr::ExprPtr parse_checked(const std::string& text,
                                     const std::string& where) {
    try {
      return expr::parse(text);
    } catch (const expr::SyntaxError& error) {
      throw AnalyticError(where + ": " + error.what());
    }
  }

  [[nodiscard]] std::optional<double> structural_parameter(
      const EvalState& st, std::string_view name) const {
    if (name == uml::sysparam::kProcesses) {
      return static_cast<double>(st.params.processes);
    }
    if (name == uml::sysparam::kThreads) {
      return static_cast<double>(st.params.threads_per_process);
    }
    if (name == uml::sysparam::kNodes) {
      return static_cast<double>(st.params.nodes);
    }
    if (name == uml::sysparam::kProcessorsPerNode) {
      return static_cast<double>(st.params.processors_per_node);
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<double> call_function(
      EvalState& st, std::string_view name,
      std::span<const double> args) const;

  AnalyticReport evaluate(const machine::SystemParameters& params) const;
};

namespace {

// ---------------------------------------------------------------------------
// Symbolic walk
// ---------------------------------------------------------------------------

/// Walks one process's control flow, emitting Events.  Sub-walkers (fork
/// branches, parallel-region threads, critical bodies, expectation
/// branches) share the lexical state but write to their own WalkResult so
/// the parent can aggregate elapsed/demand.
struct Walker {
  using Impl = AnalyticEstimator::Impl;
  using EvalState = Impl::EvalState;

  Walker(const Impl& impl_in, EvalState& st_in, WalkResult& out_in)
      : impl(impl_in), st(st_in), out(out_in) {}

  const Impl& impl;
  EvalState& st;
  WalkResult& out;
  int pid = 0;
  int tid = 0;
  std::map<std::string, double>* locals = nullptr;
  std::vector<LoopBinding>* bindings = nullptr;
  int region_threads = 0;  // > 0 inside an <<ompparallel>> region
  bool allow_comm = true;
  bool allow_fragments = true;
  std::uint64_t* steps = nullptr;
  std::uint64_t step_limit = 0;

  /// A sub-walker for nested concurrent constructs: shares the lexical
  /// state, writes to its own result, and may not communicate.
  [[nodiscard]] Walker sub(WalkResult& sub_out) const {
    Walker walker(impl, st, sub_out);
    walker.pid = pid;
    walker.tid = tid;
    walker.locals = locals;
    walker.bindings = bindings;
    walker.region_threads = region_threads;
    walker.allow_comm = false;
    walker.allow_fragments = allow_fragments;
    walker.steps = steps;
    walker.step_limit = step_limit;
    return walker;
  }

  // --- Expression evaluation ---------------------------------------------

  class NodeEnv final : public expr::Environment {
   public:
    NodeEnv(const Walker& walker, int uid) : w_(&walker), uid_(uid) {}

    [[nodiscard]] std::optional<double> variable(
        std::string_view name) const override {
      // Innermost loop binding wins.
      for (auto it = w_->bindings->rbegin(); it != w_->bindings->rend();
           ++it) {
        if (it->name == name) {
          it->read = true;
          return it->value;
        }
      }
      if (w_->locals != nullptr) {
        if (const auto it = w_->locals->find(std::string(name));
            it != w_->locals->end()) {
          return it->second;
        }
      }
      if (const auto it = w_->st.globals.find(std::string(name));
          it != w_->st.globals.end()) {
        return it->second;
      }
      if (name == uml::sysparam::kProcessId) {
        w_->st.pid_queried = true;
        return static_cast<double>(w_->pid);
      }
      if (name == uml::sysparam::kThreadId) {
        w_->st.pid_queried = true;
        return static_cast<double>(w_->tid);
      }
      if (name == uml::sysparam::kElementUid) {
        return static_cast<double>(uid_);
      }
      return w_->impl.structural_parameter(w_->st, name);
    }

    [[nodiscard]] std::optional<double> call(
        std::string_view name, std::span<const double> args) const override {
      return w_->impl.call_function(w_->st, name, args);
    }

   private:
    const Walker* w_;
    int uid_;
  };

  [[nodiscard]] int uid_of(const Node& node) const {
    return impl.uids.at(node.id());
  }

  [[nodiscard]] double eval_expr(const expr::Expr& parsed, const Node& node,
                                 std::string_view what) const {
    const NodeEnv env(*this, uid_of(node));
    try {
      return expr::evaluate(parsed, env);
    } catch (const expr::EvalError& error) {
      throw AnalyticError("node " + node.id() + ", " + std::string(what) +
                          ": " + error.what());
    }
  }

  [[nodiscard]] double eval_node_expr(const Node& node,
                                      std::string_view tag_name) const {
    const auto node_it = impl.node_exprs.find(node.id());
    if (node_it == impl.node_exprs.end()) {
      return 0.0;
    }
    const auto tag_it = node_it->second.find(std::string(tag_name));
    if (tag_it == node_it->second.end()) {
      return 0.0;
    }
    return eval_expr(*tag_it->second, node,
                     "tag '" + std::string(tag_name) + "'");
  }

  [[nodiscard]] bool has_node_expr(const Node& node,
                                   std::string_view tag_name) const {
    const auto node_it = impl.node_exprs.find(node.id());
    return node_it != impl.node_exprs.end() &&
           node_it->second.find(std::string(tag_name)) !=
               node_it->second.end();
  }

  void run_fragment(const Node& node) {
    const auto it = impl.fragments.find(node.id());
    if (it == impl.fragments.end()) {
      return;
    }
    if (!allow_fragments) {
      throw AnalyticError("node " + node.id() +
                          ": code fragments are not supported inside "
                          "probability-weighted branches");
    }
    ++st.fragments_executed;
    const NodeEnv env(*this, uid_of(node));
    for (const auto& assignment : it->second) {
      double value = 0;
      try {
        value = expr::evaluate(*assignment.value, env);
      } catch (const expr::EvalError& error) {
        throw AnalyticError("code fragment at node " + node.id() + ": " +
                            error.what());
      }
      const uml::Variable* declared = impl.model->variable(assignment.target);
      if (declared != nullptr) {
        value = coerce(declared->type, value);
      }
      if (locals != nullptr) {
        if (const auto local = locals->find(assignment.target);
            local != locals->end()) {
          local->second = value;
          continue;
        }
      }
      if (const auto global = st.globals.find(assignment.target);
          global != st.globals.end()) {
        global->second = value;
        continue;
      }
      throw AnalyticError("code fragment at node " + node.id() +
                          " assigns undeclared variable '" +
                          assignment.target + "'");
    }
  }

  // --- Event emission -----------------------------------------------------

  void emit_compute(double elapsed, double demand) {
    if (std::isnan(elapsed) || elapsed < 0) {
      throw AnalyticError("negative or NaN compute cost");
    }
    if (!out.events.empty() && out.events.back().kind == EvKind::Compute) {
      out.events.back().elapsed += elapsed;
      out.events.back().demand += demand;
      return;
    }
    out.events.push_back({EvKind::Compute, elapsed, demand, 0, 0, 0});
  }

  void emit_busy(double elapsed) {
    if (!out.events.empty() && out.events.back().kind == EvKind::Busy) {
      out.events.back().elapsed += elapsed;
      return;
    }
    out.events.push_back({EvKind::Busy, elapsed, 0, 0, 0, 0});
  }

  void require_comm(const Node& node) const {
    if (!allow_comm) {
      throw AnalyticError(
          "node " + node.id() + " (<<" + node.stereotype() +
          ">>): cross-process communication inside fork branches, parallel "
          "regions, critical sections or probability-weighted branches is "
          "not supported by the analytic backend");
    }
  }

  // --- Control flow -------------------------------------------------------

  void run_diagram(const ActivityDiagram& diagram) {
    const Node* initial = diagram.initial();
    if (initial == nullptr) {
      throw AnalyticError("diagram " + diagram.id() + " has no initial node");
    }
    walk(diagram, *initial, /*stop_kind=*/std::nullopt, nullptr);
  }

  /// Walks from `start` until a Final node (stop == nullptr) or until a
  /// node of `stop_kind` is reached (its id is written to *stop, and the
  /// node is not executed).  When stopping at a Merge, merges that close
  /// a guard-resolved decision *inside* the walked stretch are passed
  /// through (`merge_debt`), so only the branch's own reconvergence point
  /// terminates it.
  void walk(const ActivityDiagram& diagram, const Node& start,
            std::optional<NodeKind> stop_kind, std::string* stop) {
    const Node* node = &start;
    int merge_debt = 0;
    while (node != nullptr) {
      if (++*steps > step_limit) {
        throw AnalyticError("diagram " + diagram.id() +
                            ": walk exceeded step limit (unstructured "
                            "cycle without <<loop+>>?)");
      }
      if (stop != nullptr && stop_kind.has_value() &&
          node->kind() == *stop_kind) {
        if (*stop_kind == NodeKind::Merge && merge_debt > 0) {
          --merge_debt;  // closes a nested decision, keep walking
        } else {
          *stop = node->id();
          return;
        }
      }
      if (node->kind() == NodeKind::Fork) {
        std::string join_id;
        execute_fork(diagram, *node, &join_id);
        const Node* join = diagram.node(join_id);
        const auto after = diagram.outgoing(join->id());
        if (after.empty()) {
          return;
        }
        if (after.size() > 1) {
          throw AnalyticError("join " + join->id() +
                              " has multiple outgoing edges");
        }
        node = diagram.node(after[0]->target());
        continue;
      }
      if (node->kind() == NodeKind::Decision) {
        if (decision_is_probabilistic(diagram, *node)) {
          // Consumes the decision's merge inline and resumes after it.
          node = execute_expected_decision(diagram, *node);
          continue;
        }
        if (stop_kind == NodeKind::Merge) {
          ++merge_debt;  // this decision's own merge is not ours
        }
      }
      execute_node(*node);
      if (node->kind() == NodeKind::Final) {
        return;
      }
      node = next_node(diagram, *node);
    }
  }

  [[nodiscard]] const Node* next_node(const ActivityDiagram& diagram,
                                      const Node& node) const {
    const auto outgoing = diagram.outgoing(node.id());
    if (node.kind() == NodeKind::Decision) {
      const uml::ControlFlow* chosen = nullptr;
      const uml::ControlFlow* fallback = nullptr;
      for (const auto* edge : outgoing) {
        if (edge->is_else()) {
          if (fallback == nullptr) {
            fallback = edge;
          }
          continue;
        }
        const auto guard_it = impl.guards.find(edge->id());
        if (guard_it == impl.guards.end()) {
          continue;  // unguarded edge out of a decision: never taken
        }
        const NodeEnv env(*this, uid_of(node));
        double value = 0;
        try {
          value = expr::evaluate(*guard_it->second, env);
        } catch (const expr::EvalError& error) {
          throw AnalyticError("guard of edge " + edge->id() + ": " +
                              error.what());
        }
        if (expr::truthy(value)) {
          chosen = edge;
          break;
        }
      }
      if (chosen == nullptr) {
        chosen = fallback;
      }
      if (chosen == nullptr) {
        throw AnalyticError("decision " + node.id() +
                            ": no guard holds and no 'else' edge");
      }
      return diagram.node(chosen->target());
    }
    if (outgoing.empty()) {
      return nullptr;  // dead end; the checker's connectivity rule warns
    }
    if (outgoing.size() > 1) {
      throw AnalyticError("node " + node.id() +
                          " has multiple unguarded outgoing edges");
    }
    return diagram.node(outgoing[0]->target());
  }

  void execute_node(const Node& node) {
    ++st.elements;
    switch (node.kind()) {
      case NodeKind::Initial:
      case NodeKind::Final:
      case NodeKind::Merge:
      case NodeKind::Join:
      case NodeKind::Decision:
      case NodeKind::Fork:  // handled inline by walk()
        return;
      case NodeKind::Action:
        execute_action(node);
        return;
      case NodeKind::Activity:
        execute_activity(node);
        return;
      case NodeKind::Loop:
        execute_loop(node);
        return;
    }
  }

  void execute_fork(const ActivityDiagram& diagram, const Node& node,
                    std::string* join_out) {
    const auto outgoing = diagram.outgoing(node.id());
    std::vector<std::string> joins(outgoing.size());
    double max_elapsed = 0;
    double total_demand = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw AnalyticError("fork " + node.id() + ": dangling edge");
      }
      WalkResult branch;
      Walker walker = sub(branch);
      walker.walk(diagram, *target, NodeKind::Join, &joins[i]);
      max_elapsed = std::max(max_elapsed, sum_elapsed(branch.events));
      total_demand += sum_demand(branch.events);
      merge_criticals(branch, 1.0);
    }
    for (std::size_t i = 1; i < joins.size(); ++i) {
      if (joins[i] != joins[0]) {
        throw AnalyticError("fork " + node.id() +
                            ": branches reach different joins ('" + joins[0] +
                            "' vs '" + joins[i] + "')");
      }
    }
    if (joins.empty() || joins[0].empty()) {
      throw AnalyticError("fork " + node.id() +
                          ": branches do not reach a join");
    }
    emit_compute(max_elapsed, total_demand);
    *join_out = joins[0];
  }

  [[nodiscard]] bool decision_is_probabilistic(const ActivityDiagram& diagram,
                                               const Node& node) const {
    for (const auto* edge : diagram.outgoing(node.id())) {
      if (edge->tag_number(uml::tag::kProb).has_value()) {
        return true;
      }
    }
    return false;
  }

  /// Expectation over the branches of a `prob`-annotated decision: every
  /// branch is walked to the common merge, weighted by its probability,
  /// and the expected elapsed/demand is emitted as one Compute step.
  /// Returns the node after the merge to continue from (the merge itself
  /// is consumed here, so an enclosing branch walk never mistakes it for
  /// its own reconvergence point).
  const Node* execute_expected_decision(const ActivityDiagram& diagram,
                                        const Node& node) {
    ++st.elements;
    const auto outgoing = diagram.outgoing(node.id());
    if (outgoing.empty()) {
      throw AnalyticError("decision " + node.id() + " has no outgoing edges");
    }
    std::vector<double> weights(outgoing.size(), -1);
    double tagged_sum = 0;
    std::size_t untagged = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      if (const auto prob = outgoing[i]->tag_number(uml::tag::kProb)) {
        if (*prob < 0 || *prob > 1 || std::isnan(*prob)) {
          throw AnalyticError("decision " + node.id() + ": edge " +
                              outgoing[i]->id() + " has prob outside [0, 1]");
        }
        weights[i] = *prob;
        tagged_sum += *prob;
      } else {
        ++untagged;
      }
    }
    if (tagged_sum > 1 + 1e-9) {
      throw AnalyticError("decision " + node.id() +
                          ": branch probabilities sum to more than 1");
    }
    const double rest =
        untagged > 0
            ? std::max(0.0, 1.0 - tagged_sum) / static_cast<double>(untagged)
            : 0;
    double norm = 0;
    for (auto& weight : weights) {
      if (weight < 0) {
        weight = rest;
      }
      norm += weight;
    }
    if (norm <= 0) {
      throw AnalyticError("decision " + node.id() +
                          ": branch probabilities sum to zero");
    }

    std::string merge_id;
    double expected_elapsed = 0;
    double expected_demand = 0;
    for (std::size_t i = 0; i < outgoing.size(); ++i) {
      const Node* target = diagram.node(outgoing[i]->target());
      if (target == nullptr) {
        throw AnalyticError("decision " + node.id() + ": dangling edge");
      }
      const double weight = weights[i] / norm;
      std::string branch_merge;
      WalkResult branch;
      Walker walker = sub(branch);
      walker.allow_fragments = false;
      walker.walk(diagram, *target, NodeKind::Merge, &branch_merge);
      if (branch_merge.empty()) {
        throw AnalyticError("decision " + node.id() +
                            ": probability-weighted branches must "
                            "reconverge at a merge");
      }
      if (merge_id.empty()) {
        merge_id = branch_merge;
      } else if (merge_id != branch_merge) {
        throw AnalyticError("decision " + node.id() +
                            ": branches reach different merges ('" +
                            merge_id + "' vs '" + branch_merge + "')");
      }
      expected_elapsed += weight * sum_elapsed(branch.events);
      expected_demand += weight * sum_demand(branch.events);
      merge_criticals(branch, weight);
    }
    emit_compute(expected_elapsed, expected_demand);
    const Node* merge = diagram.node(merge_id);
    ++st.elements;  // the consumed merge
    return next_node(diagram, *merge);
  }

  void execute_action(const Node& node) {
    run_fragment(node);
    const std::string& stereotype = node.stereotype();
    const auto& params = st.params;
    if (stereotype == uml::stereo::kActionPlus || stereotype.empty()) {
      double cost = 0;
      if (has_node_expr(node, uml::tag::kCost)) {
        cost = eval_node_expr(node, uml::tag::kCost);
      } else if (auto time = node.tag_number(uml::tag::kTime)) {
        cost = *time;
      }
      const double seconds = machine::compute_time(params, cost);
      emit_compute(seconds, seconds);
    } else if (stereotype == uml::stereo::kSend) {
      require_comm(node);
      const int dest =
          static_cast<int>(eval_node_expr(node, uml::tag::kDest));
      const double bytes = eval_node_expr(node, uml::tag::kSize);
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      emit_busy(params.network_overhead);
      out.events.push_back({EvKind::Send, 0, 0, bytes, dest, tag});
    } else if (stereotype == uml::stereo::kRecv) {
      require_comm(node);
      const int source =
          static_cast<int>(eval_node_expr(node, uml::tag::kSource));
      const int tag =
          static_cast<int>(node.tag_number(uml::tag::kMsgTag).value_or(0));
      out.events.push_back({EvKind::Recv, 0, 0, 0, source, tag});
    } else if (stereotype == uml::stereo::kBarrier) {
      require_comm(node);
      out.events.push_back(
          {EvKind::Barrier, machine::barrier_time(params), 0, 0, 0, 0});
    } else if (stereotype == uml::stereo::kBroadcast ||
               stereotype == uml::stereo::kReduce ||
               stereotype == uml::stereo::kAllReduce ||
               stereotype == uml::stereo::kScatter ||
               stereotype == uml::stereo::kGather) {
      require_comm(node);
      const double bytes = eval_node_expr(node, uml::tag::kSize);
      const double hold = workload::CollectiveElement::model_time(
          params, collective_kind(stereotype), params.processes, bytes);
      out.events.push_back({EvKind::Barrier, hold, 0, 0, 0, 0});
    } else if (stereotype == uml::stereo::kOmpFor) {
      const double iterations = eval_node_expr(node, uml::tag::kIterations);
      const double itercost = eval_node_expr(node, uml::tag::kIterCost);
      std::string schedule = node.tag_string(uml::tag::kSchedule);
      if (schedule.empty()) {
        schedule = "static";
      }
      const auto chunk = static_cast<std::int64_t>(
          node.tag_number(uml::tag::kChunk).value_or(0));
      const int threads = region_threads > 0 ? region_threads : 1;
      const double compute = workload::WorkshareElement::model_compute(
          iterations, itercost, schedule, chunk, threads, tid);
      const double seconds = machine::compute_time(params, compute);
      emit_compute(seconds, seconds);
    } else if (stereotype == uml::stereo::kOmpBarrier) {
      // Region threads are modeled as aligned (the region advances at the
      // pace of its slowest thread), so an intra-region barrier costs
      // nothing extra here — exactly what the simulator charges.
    } else {
      throw AnalyticError("node " + node.id() +
                          ": unsupported stereotype <<" + stereotype +
                          ">> on an action node");
    }
  }

  void execute_activity(const Node& node) {
    run_fragment(node);
    const ActivityDiagram* sub_diagram =
        impl.model->diagram(node.subdiagram_id());
    const std::string& stereotype = node.stereotype();
    if (stereotype == uml::stereo::kOmpParallel) {
      int threads = st.params.threads_per_process;
      if (node.has_tag(uml::tag::kNumThreads) &&
          !node.tag_string(uml::tag::kNumThreads).empty()) {
        threads =
            static_cast<int>(eval_node_expr(node, uml::tag::kNumThreads));
      }
      if (threads < 1) {
        throw AnalyticError("parallel region at node " + node.id() +
                            ": num_threads must be >= 1");
      }
      double max_elapsed = 0;
      double total_demand = 0;
      for (int thread = 0; thread < threads; ++thread) {
        WalkResult thread_result;
        Walker walker = sub(thread_result);
        walker.tid = thread;
        walker.region_threads = threads;
        walker.run_diagram(*sub_diagram);
        max_elapsed = std::max(max_elapsed, sum_elapsed(thread_result.events));
        total_demand += sum_demand(thread_result.events);
        merge_criticals(thread_result, 1.0);
      }
      emit_compute(max_elapsed, total_demand);
    } else if (stereotype == uml::stereo::kOmpCritical) {
      std::string lock = node.tag_string(uml::tag::kCriticalName);
      if (lock.empty()) {
        lock = "default";
      }
      WalkResult body;
      Walker walker = sub(body);
      walker.run_diagram(*sub_diagram);
      // The body runs on this process's critical path; the lock-held time
      // additionally serializes against every other holder of `lock`.
      out.critical_demand[lock] += sum_elapsed(body.events);
      merge_criticals(body, 1.0);
      for (const auto& event : body.events) {
        append_event(event);
      }
    } else {
      // <<activity+>> (or unstereotyped composite): inline content.
      run_diagram(*sub_diagram);
    }
  }

  void execute_loop(const Node& node) {
    run_fragment(node);
    const ActivityDiagram* body = impl.model->diagram(node.subdiagram_id());
    const double raw = eval_node_expr(node, uml::tag::kIterations);
    if (std::isnan(raw) || raw < 0) {
      throw AnalyticError("loop " + node.id() +
                          ": iteration count is negative or NaN");
    }
    const auto iterations = static_cast<std::int64_t>(raw);
    if (iterations == 0) {
      return;
    }
    std::string var = node.tag_string(uml::tag::kLoopVar);
    if (var.empty()) {
      var = "i";
    }
    bindings->push_back({var, 0.0, false});

    // First iteration into a capture buffer: when the body provably does
    // not depend on the trip variable and has no side effects, the
    // remaining iterations are the first one times (n - 1) — the symbolic
    // trip-count resolution that keeps deep loop nests O(body), not
    // O(body * n).
    const std::uint64_t fragments_before = st.fragments_executed;
    WalkResult first;
    {
      Walker walker = sub(first);
      walker.allow_comm = allow_comm;
      walker.run_diagram(*body);
    }
    const bool collapsible = !bindings->back().read &&
                             st.fragments_executed == fragments_before &&
                             compute_only(first.events);
    for (const auto& event : first.events) {
      append_event(event);
    }
    merge_criticals(first, 1.0);
    if (collapsible) {
      const auto rest = static_cast<double>(iterations - 1);
      emit_compute(rest * sum_elapsed(first.events),
                   rest * sum_demand(first.events));
      merge_criticals(first, rest);
    } else {
      for (std::int64_t k = 1; k < iterations; ++k) {
        bindings->back().value = static_cast<double>(k);
        run_diagram(*body);
      }
    }
    bindings->pop_back();
  }

  void append_event(const Event& event) {
    // Re-coalesce adjacent Compute/Busy runs when splicing sub-results.
    if (event.kind == EvKind::Compute) {
      emit_compute(event.elapsed, event.demand);
    } else if (event.kind == EvKind::Busy) {
      emit_busy(event.elapsed);
    } else {
      out.events.push_back(event);
    }
  }

  void merge_criticals(const WalkResult& from, double weight) {
    for (const auto& [name, demand] : from.critical_demand) {
      out.critical_demand[name] += weight * demand;
    }
  }

  void walk_process() {
    // Per-process locals, initialized in declaration order.
    for (const auto& variable : impl.variables) {
      if (variable.scope != uml::VariableScope::Local) {
        continue;
      }
      double value = 0;
      if (variable.initializer != nullptr) {
        const NodeEnv env(*this, 0);
        try {
          value = expr::evaluate(*variable.initializer, env);
        } catch (const expr::EvalError& error) {
          throw AnalyticError("initializer of variable " + variable.name +
                              ": " + error.what());
        }
      }
      (*locals)[variable.name] = coerce(variable.type, value);
    }
    run_diagram(*impl.model->main_diagram());
  }
};

/// Function-body environment: parameters, globals and the structural
/// system parameters only (mirrors the interpreter and Fig. 8a's
/// file-scope C++ functions).
class FunctionEnv final : public expr::Environment {
 public:
  using Impl = AnalyticEstimator::Impl;

  FunctionEnv(const Impl& impl, Impl::EvalState& st, const ParsedFunction& fn,
              std::span<const double> args)
      : impl_(&impl), st_(&st), fn_(&fn), args_(args) {}

  [[nodiscard]] std::optional<double> variable(
      std::string_view name) const override {
    for (std::size_t i = 0; i < fn_->parameters.size(); ++i) {
      if (fn_->parameters[i] == name) {
        return i < args_.size() ? args_[i] : 0.0;
      }
    }
    if (const auto it = st_->globals.find(std::string(name));
        it != st_->globals.end()) {
      return it->second;
    }
    return impl_->structural_parameter(*st_, name);
  }

  [[nodiscard]] std::optional<double> call(
      std::string_view name, std::span<const double> args) const override {
    return impl_->call_function(*st_, name, args);
  }

 private:
  const Impl* impl_;
  Impl::EvalState* st_;
  const ParsedFunction* fn_;
  std::span<const double> args_;
};

// ---------------------------------------------------------------------------
// Replay: dependency resolution across processes
// ---------------------------------------------------------------------------

struct ReplayOutcome {
  std::vector<double> finish;       // per-process clock
  std::vector<double> node_demand;  // contended CPU seconds per node
};

ReplayOutcome replay(const machine::SystemParameters& params,
                     const std::vector<const WalkResult*>& per_pid) {
  const int np = params.processes;
  struct Proc {
    std::size_t cursor = 0;
    double clock = 0;
    bool at_barrier = false;
    bool finished = false;
  };
  std::vector<Proc> procs(static_cast<std::size_t>(np));
  std::vector<int> node(static_cast<std::size_t>(np));
  for (int pid = 0; pid < np; ++pid) {
    node[static_cast<std::size_t>(pid)] = machine::node_of(params, pid);
  }
  ReplayOutcome outcome;
  outcome.node_demand.assign(static_cast<std::size_t>(params.nodes), 0.0);

  // FIFO per (dst, src, tag) — the simulator's mailbox matching rule.
  std::map<std::tuple<int, int, int>, std::deque<std::pair<double, double>>>
      ledger;

  int waiting = 0;
  int finished = 0;
  bool progressed = true;
  while (finished < np && progressed) {
    progressed = false;
    for (int pid = 0; pid < np; ++pid) {
      Proc& proc = procs[static_cast<std::size_t>(pid)];
      if (proc.finished || proc.at_barrier) {
        continue;
      }
      const auto& events = per_pid[static_cast<std::size_t>(pid)]->events;
      while (proc.cursor < events.size()) {
        const Event& event = events[proc.cursor];
        if (event.kind == EvKind::Compute) {
          proc.clock += event.elapsed;
          outcome.node_demand[static_cast<std::size_t>(
              node[static_cast<std::size_t>(pid)])] += event.demand;
        } else if (event.kind == EvKind::Busy) {
          proc.clock += event.elapsed;
        } else if (event.kind == EvKind::Send) {
          ledger[{event.peer, pid, event.tag}].emplace_back(proc.clock,
                                                            event.bytes);
        } else if (event.kind == EvKind::Recv) {
          auto it = ledger.find({pid, event.peer, event.tag});
          if (it == ledger.end() || it->second.empty()) {
            break;  // blocked until the matching send is replayed
          }
          const auto [sent_at, bytes] = it->second.front();
          it->second.pop_front();
          const double arrival =
              sent_at + machine::message_time(params, event.peer, pid, bytes);
          proc.clock = std::max(proc.clock, arrival);
        } else {  // Barrier
          proc.at_barrier = true;
          ++waiting;
          progressed = true;
          if (waiting == np) {
            double release = 0;
            for (const auto& other : procs) {
              release = std::max(release, other.clock);
            }
            for (int other = 0; other < np; ++other) {
              Proc& peer = procs[static_cast<std::size_t>(other)];
              const auto& peer_events =
                  per_pid[static_cast<std::size_t>(other)]->events;
              peer.clock = release + peer_events[peer.cursor].elapsed;
              ++peer.cursor;
              peer.at_barrier = false;
            }
            waiting = 0;
            // This process's cursor advanced with everyone else's;
            // continue draining it.
            continue;
          }
          break;  // parked until the last participant arrives
        }
        ++proc.cursor;
        progressed = true;
      }
      if (!proc.at_barrier && proc.cursor >= events.size() &&
          !proc.finished) {
        proc.finished = true;
        ++finished;
      }
    }
  }

  if (finished < np) {
    std::ostringstream why;
    why << "communication deadlock during analytic replay:";
    for (int pid = 0; pid < np; ++pid) {
      const Proc& proc = procs[static_cast<std::size_t>(pid)];
      if (proc.finished) {
        continue;
      }
      const auto& events = per_pid[static_cast<std::size_t>(pid)]->events;
      why << " p" << pid;
      if (proc.at_barrier) {
        why << " waits at a barrier;";
      } else if (proc.cursor < events.size() &&
                 events[proc.cursor].kind == EvKind::Recv) {
        why << " waits for a message from p" << events[proc.cursor].peer
            << ";";
      } else {
        why << " is blocked;";
      }
    }
    throw AnalyticError(why.str());
  }

  outcome.finish.reserve(static_cast<std::size_t>(np));
  for (const auto& proc : procs) {
    outcome.finish.push_back(proc.clock);
  }
  return outcome;
}

}  // namespace

// ---------------------------------------------------------------------------
// Impl::evaluate — walk, replay, bound
// ---------------------------------------------------------------------------

std::optional<double> AnalyticEstimator::Impl::call_function(
    EvalState& st, std::string_view name, std::span<const double> args) const {
  const auto it = functions.find(std::string(name));
  if (it == functions.end()) {
    return std::nullopt;  // fall back to expr built-ins
  }
  if (st.call_depth > 64) {
    throw AnalyticError("cost-function call depth exceeded (cycle?)");
  }
  ++st.call_depth;
  const FunctionEnv env(*this, st, it->second, args);
  const double result = expr::evaluate(*it->second.body, env);
  --st.call_depth;
  return result;
}

AnalyticReport AnalyticEstimator::Impl::evaluate(
    const machine::SystemParameters& params) const {
  params.validate();
  EvalState st;
  st.params = params;

  // Global variables, initialized in declaration order (interpreter
  // start_run semantics).
  std::size_t total_nodes = 0;
  for (const auto& diagram : model->diagrams()) {
    total_nodes += diagram->node_count();
  }
  {
    std::map<std::string, double> no_locals;
    std::vector<LoopBinding> no_bindings;
    WalkResult unused;
    std::uint64_t steps = 0;
    Walker init(*this, st, unused);
    init.locals = &no_locals;
    init.bindings = &no_bindings;
    init.steps = &steps;
    init.step_limit = 1;
    for (const auto& variable : variables) {
      if (variable.scope != uml::VariableScope::Global) {
        continue;
      }
      double value = 0;
      if (variable.initializer != nullptr) {
        const Walker::NodeEnv env(init, 0);
        try {
          value = expr::evaluate(*variable.initializer, env);
        } catch (const expr::EvalError& error) {
          throw AnalyticError("initializer of variable " + variable.name +
                              ": " + error.what());
        }
      }
      st.globals[variable.name] = coerce(variable.type, value);
    }
  }

  const int np = params.processes;
  std::vector<WalkResult> storage;
  storage.reserve(static_cast<std::size_t>(np));
  std::vector<const WalkResult*> per_pid(static_cast<std::size_t>(np));

  const auto walk_one = [&](int pid) -> WalkResult {
    WalkResult result;
    std::map<std::string, double> locals;
    std::vector<LoopBinding> bindings;
    std::uint64_t steps = 0;
    Walker walker(*this, st, result);
    walker.pid = pid;
    walker.locals = &locals;
    walker.bindings = &bindings;
    walker.steps = &steps;
    walker.step_limit = 1000000ULL + 1000ULL * total_nodes;
    walker.walk_process();
    return result;
  };

  st.pid_queried = false;
  const std::uint64_t fragments_before = st.fragments_executed;
  storage.push_back(walk_one(0));
  if (!st.pid_queried && st.fragments_executed == fragments_before) {
    // The walk is process-independent (no pid/tid reads, no state
    // mutation): every process repeats the same timeline, so one walk
    // serves all np — the SPMD fast path that makes grid sweeps cheap.
    for (int pid = 0; pid < np; ++pid) {
      per_pid[static_cast<std::size_t>(pid)] = &storage[0];
    }
  } else {
    for (int pid = 1; pid < np; ++pid) {
      storage.push_back(walk_one(pid));
    }
    for (int pid = 0; pid < np; ++pid) {
      per_pid[static_cast<std::size_t>(pid)] =
          &storage[static_cast<std::size_t>(pid)];
    }
  }

  const ReplayOutcome outcome = replay(params, per_pid);

  AnalyticReport report;
  report.processes = np;
  report.evaluated_elements = st.elements;
  double makespan = 0;
  for (int pid = 0; pid < np; ++pid) {
    const double finish = outcome.finish[static_cast<std::size_t>(pid)];
    report.per_process_finish[pid] = finish;
    makespan = std::max(makespan, finish);
  }

  // Contention correction: a node's processors can serve at most
  // `processors_per_node` compute-seconds per second, so its total demand
  // divided by the server count lower-bounds the makespan (deterministic
  // M/M/k heavy-traffic limit).  Named critical sections serialize their
  // total lock-held demand the same way.
  const auto servers = static_cast<double>(params.processors_per_node);
  for (const double demand : outcome.node_demand) {
    makespan = std::max(makespan, demand / servers);
  }
  std::map<std::string, double> critical_totals;
  for (const auto* result : per_pid) {
    for (const auto& [name, demand] : result->critical_demand) {
      critical_totals[name] += demand;
    }
  }
  for (const auto& [name, demand] : critical_totals) {
    makespan = std::max(makespan, demand);
  }
  report.predicted_time = makespan;

  report.node_loads.reserve(outcome.node_demand.size());
  for (std::size_t n = 0; n < outcome.node_demand.size(); ++n) {
    NodeLoad load;
    load.compute_demand = outcome.node_demand[n];
    load.utilization = makespan > 0
                           ? outcome.node_demand[n] / (servers * makespan)
                           : 0;
    load.processes = 0;
    report.node_loads.push_back(load);
  }
  for (int pid = 0; pid < np; ++pid) {
    ++report
          .node_loads[static_cast<std::size_t>(machine::node_of(params, pid))]
          .processes;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

std::string AnalyticReport::machine_report() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  for (std::size_t n = 0; n < node_loads.size(); ++n) {
    out << "node" << n << ": utilization " << node_loads[n].utilization
        << ", demand " << node_loads[n].compute_demand << " s, processes "
        << node_loads[n].processes << '\n';
  }
  return out.str();
}

std::string AnalyticReport::summary() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(12);
  out << "predicted time: " << predicted_time << " s (analytic)\n";
  out << "processes:      " << processes << '\n';
  out << "elements:       " << evaluated_elements << '\n';
  for (const auto& [pid, finish] : per_process_finish) {
    out << "  p" << pid << " finished at " << finish << " s\n";
  }
  const std::string machine = machine_report();
  if (!machine.empty()) {
    out << "-- machine --\n" << machine;
  }
  return out.str();
}

AnalyticEstimator::AnalyticEstimator(const uml::Model& model)
    : impl_(std::make_unique<Impl>(model)) {}

AnalyticEstimator::AnalyticEstimator(uml::Model&& model) {
  auto owned = std::make_unique<uml::Model>(std::move(model));
  impl_ = std::make_unique<Impl>(*owned);
  impl_->owned.emplace(std::move(*owned));
  impl_->model = &*impl_->owned;
}

AnalyticEstimator::~AnalyticEstimator() = default;

AnalyticReport AnalyticEstimator::evaluate(
    const machine::SystemParameters& params) const {
  return impl_->evaluate(params);
}

}  // namespace prophet::analytic
