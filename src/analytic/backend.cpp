#include "prophet/analytic/backend.hpp"

#include <stdexcept>
#include <utility>

#include "prophet/analytic/analytic.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/obs/obs.hpp"

namespace prophet::analytic {

namespace {

/// Simulation, prepared: a handle on the shared lowering.  Every
/// estimate() call constructs its own interpreter (per-run state only —
/// O(1) over the shared program) and its own engine inside the
/// SimulationManager, so concurrent calls share nothing mutable.
class SimulationPrepared final : public estimator::PreparedModel {
 public:
  explicit SimulationPrepared(lower::ModelProgramPtr program)
      : program_(std::move(program)) {
    if (program_ == nullptr) {
      throw interp::InterpretError("null model program");
    }
  }

  [[nodiscard]] std::string_view backend_name() const override {
    return "sim";
  }

  [[nodiscard]] estimator::PredictionReport estimate(
      const machine::SystemParameters& params,
      const estimator::EstimationOptions& options) const override {
    interp::Interpreter interpreter(program_);
    const estimator::SimulationManager manager(params, options);
    return manager.run(interpreter);
  }

  [[nodiscard]] lower::ModelProgramPtr lowering() const override {
    return program_;
  }

 private:
  lower::ModelProgramPtr program_;
};

/// Analytic, prepared: an AnalyticEstimator over the shared lowering.
/// Its evaluate() is const and keeps all per-evaluation state on the
/// call's stack, so concurrent estimate() calls are race-free by
/// construction.
class AnalyticPrepared final : public estimator::PreparedModel {
 public:
  explicit AnalyticPrepared(lower::ModelProgramPtr program)
      : estimator_(std::move(program)) {}

  [[nodiscard]] std::string_view backend_name() const override {
    return "analytic";
  }

  [[nodiscard]] estimator::PredictionReport estimate(
      const machine::SystemParameters& params,
      const estimator::EstimationOptions& options) const override {
    // No trace to collect: nothing is simulated.
    obs::AnalyticCounters counters;
    const bool metrics = options.metrics != nullptr;
    // Same guard resolution as the SimulationManager: a caller-owned
    // budget wins, active limits get an evaluation-local one, neither
    // means unguarded.
    guard::Budget local_budget(options.limits);
    guard::Budget* budget = options.budget != nullptr ? options.budget
                            : options.limits.any()    ? &local_budget
                                                      : nullptr;
    AnalyticReport analytic =
        estimator_.evaluate(params, metrics ? &counters : nullptr, budget);
    estimator::PredictionReport report;
    report.predicted_time = analytic.predicted_time;
    report.per_process_finish = std::move(analytic.per_process_finish);
    report.processes = analytic.processes;
    report.events = 0;
    if (options.collect_machine_report) {
      report.machine_report = analytic.machine_report();
    }
    if (metrics) {
      options.metrics->fold("analytic.", counters);
      options.metrics->counter("analytic.elements")
          .add(analytic.evaluated_elements);
      options.metrics->counter("analytic.runs").add(1);
      options.metrics->fold("expr.", counters.expr);
    }
    return report;
  }

  [[nodiscard]] std::vector<estimator::PredictionReport> estimate_batch(
      std::span<const machine::SystemParameters> params,
      const estimator::EstimationOptions& options) const override {
    obs::AnalyticCounters counters;
    const bool metrics = options.metrics != nullptr;
    // Same guard resolution as the scalar estimate(): a caller-owned
    // budget wins, active limits get an evaluation-local one, neither
    // means unguarded.
    guard::Budget local_budget(options.limits);
    guard::Budget* budget = options.budget != nullptr ? options.budget
                            : options.limits.any()    ? &local_budget
                                                      : nullptr;
    std::size_t lanes_fallback = 0;
    std::vector<AnalyticReport> analytic = estimator_.evaluate_batch(
        params, metrics ? &counters : nullptr, budget, &lanes_fallback);
    std::vector<estimator::PredictionReport> reports;
    reports.reserve(analytic.size());
    for (auto& lane : analytic) {
      estimator::PredictionReport report;
      report.predicted_time = lane.predicted_time;
      report.per_process_finish = std::move(lane.per_process_finish);
      report.processes = lane.processes;
      report.events = 0;
      if (options.collect_machine_report) {
        report.machine_report = lane.machine_report();
      }
      if (metrics) {
        options.metrics->counter("analytic.elements")
            .add(lane.evaluated_elements);
      }
      reports.push_back(std::move(report));
    }
    if (metrics) {
      options.metrics->fold("analytic.", counters);
      options.metrics->counter("analytic.runs").add(params.size());
      options.metrics->fold("expr.", counters.expr);
      if (lanes_fallback > 0) {
        options.metrics->counter("batch.lanes_fallback").add(lanes_fallback);
      }
    }
    return reports;
  }

  [[nodiscard]] lower::ModelProgramPtr lowering() const override {
    return estimator_.lowering();
  }

 private:
  AnalyticEstimator estimator_;
};

}  // namespace

std::unique_ptr<estimator::PreparedModel> SimulationBackend::prepare(
    lower::ModelProgramPtr program) const {
  return std::make_unique<SimulationPrepared>(std::move(program));
}

std::unique_ptr<estimator::PreparedModel> AnalyticBackend::prepare(
    lower::ModelProgramPtr program) const {
  return std::make_unique<AnalyticPrepared>(std::move(program));
}

std::unique_ptr<estimator::Backend> make_backend(estimator::BackendKind kind) {
  switch (kind) {
    case estimator::BackendKind::Simulation:
      return std::make_unique<SimulationBackend>();
    case estimator::BackendKind::Analytic:
      return std::make_unique<AnalyticBackend>();
    case estimator::BackendKind::Codegen:
      throw std::invalid_argument(
          "make_backend: the codegen backend lives in prophet/cgen (use "
          "cgen::make_backend)");
    case estimator::BackendKind::Both:
    case estimator::BackendKind::SimCodegen:
    case estimator::BackendKind::AnalyticCodegen:
    case estimator::BackendKind::All:
      break;
  }
  throw std::invalid_argument(
      "make_backend: '" + std::string(estimator::to_string(kind)) +
      "' selects cross-validation, not a single backend");
}

}  // namespace prophet::analytic
