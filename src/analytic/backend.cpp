#include "prophet/analytic/backend.hpp"

#include <stdexcept>
#include <utility>

#include "prophet/analytic/analytic.hpp"
#include "prophet/interp/interpreter.hpp"

namespace prophet::analytic {

estimator::PredictionReport SimulationBackend::estimate(
    const uml::Model& model, const machine::SystemParameters& params,
    const estimator::EstimationOptions& options) const {
  interp::Interpreter interpreter(model);
  const estimator::SimulationManager manager(params, options);
  return manager.run(interpreter);
}

estimator::PredictionReport AnalyticBackend::estimate(
    const uml::Model& model, const machine::SystemParameters& params,
    const estimator::EstimationOptions& options) const {
  (void)options;  // no trace to collect: nothing is simulated
  const AnalyticEstimator analyzer(model);
  const AnalyticReport analytic = analyzer.evaluate(params);
  estimator::PredictionReport report;
  report.predicted_time = analytic.predicted_time;
  report.per_process_finish = analytic.per_process_finish;
  report.processes = analytic.processes;
  report.events = 0;
  report.machine_report = analytic.machine_report();
  return report;
}

std::unique_ptr<estimator::Backend> make_backend(estimator::BackendKind kind) {
  switch (kind) {
    case estimator::BackendKind::Simulation:
      return std::make_unique<SimulationBackend>();
    case estimator::BackendKind::Analytic:
      return std::make_unique<AnalyticBackend>();
    case estimator::BackendKind::Both:
      break;
  }
  throw std::invalid_argument(
      "make_backend: 'both' selects cross-validation, not a single backend");
}

}  // namespace prophet::analytic
