#include "prophet/sim/stats.hpp"

#include <sstream>

namespace prophet::sim {

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto count : counts_) {
    peak = std::max(peak, count);
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.setf(std::ios::fixed);
    out.precision(4);
    out << bin_lo(i) << " | ";
    const std::size_t bar = counts_[i] * width / peak;
    for (std::size_t j = 0; j < bar; ++j) {
      out << '#';
    }
    out << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace prophet::sim
