#include "prophet/sim/random.hpp"

#include <cmath>
#include <numbers>

namespace prophet::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  has_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::exponential(double mean) {
  double u = next_double();
  while (u <= 0.0) {
    u = next_double();
  }
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) {
    u1 = next_double();
  }
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

}  // namespace prophet::sim
