#include "prophet/sim/engine.hpp"

#include <algorithm>

#include "prophet/guard/guard.hpp"

namespace prophet::sim {

std::coroutine_handle<> Process::promise_type::FinalAwaiter::await_suspend(
    Handle handle) noexcept {
  promise_type& promise = handle.promise();
  if (promise.continuation) {
    // Sub-process: transfer control straight back to the caller; the
    // CallAwaiter (alive in the caller's frame) owns and destroys the
    // child coroutine after await_resume.
    return promise.continuation;
  }
  // Spawned process: publish completion, wake joiners, and hand the frame
  // to the engine for destruction once control is back in the run loop.
  Engine* engine = promise.engine;
  if (promise.state) {
    promise.state->done = true;
    promise.state->error = promise.error;
    if (promise.error && promise.state->waiters.empty()) {
      // Nobody is joining; surface the error through the run loop.
      engine->record_error(promise.error);
    }
    for (const auto waiter : promise.state->waiters) {
      engine->schedule(waiter, engine->now());
    }
    promise.state->waiters.clear();
  } else if (promise.error) {
    engine->record_error(promise.error);
  }
  engine->defer_destroy(handle);
  return std::noop_coroutine();
}

Engine::~Engine() {
  drain_destroy_list();
  // Destroy processes that never finished (e.g. blocked on a mailbox when
  // the calendar drained).  Their frames are suspended, so destroy() is
  // safe.
  for (const auto handle : live_) {
    handle.destroy();
  }
}

void Engine::schedule(std::coroutine_handle<> handle, Time when) {
  if (when < now_) {
    throw std::logic_error("schedule() into the past");
  }
  queue_.push(Event{when, next_seq_++, handle});
}

ProcessRef Engine::spawn_at(Time when, Process process) {
  if (!process.valid()) {
    throw std::logic_error("spawning an empty Process");
  }
  const Process::Handle handle = process.release();
  auto state = std::make_shared<detail::ProcessState>();
  handle.promise().engine = this;
  handle.promise().state = state;
  live_.push_back(handle);
  schedule(handle, when);
  return ProcessRef(std::move(state));
}

std::uint64_t Engine::run(Time until) {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    if (queue_.top().when > until) {
      break;
    }
    const Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.handle.resume();
    ++processed_;
    ++count;
    drain_destroy_list();
    if (pending_error_) {
      std::exception_ptr error = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(error);
    }
    // Cooperative guard: every dispatched event is charged, so a bounded
    // run can exceed its event budget or deadline by at most one event.
    if (budget_ != nullptr) {
      budget_->charge_sim_events(1, "sim-engine");
    }
  }
  return count;
}

bool Engine::step() {
  if (queue_.empty()) {
    return false;
  }
  const Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  event.handle.resume();
  ++processed_;
  drain_destroy_list();
  if (pending_error_) {
    std::exception_ptr error = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (budget_ != nullptr) {
    budget_->charge_sim_events(1, "sim-engine");
  }
  return true;
}

void Engine::defer_destroy(std::coroutine_handle<> handle) {
  to_destroy_.push_back(handle);
}

void Engine::drain_destroy_list() {
  for (const auto handle : to_destroy_) {
    std::erase_if(live_, [&](const std::coroutine_handle<>& live) {
      return live.address() == handle.address();
    });
    handle.destroy();
  }
  to_destroy_.clear();
}

}  // namespace prophet::sim
