#include "prophet/sim/mailbox.hpp"

namespace prophet::sim {

Mailbox::Mailbox(Engine& engine, std::string name)
    : engine_(&engine), name_(std::move(name)) {}

void Mailbox::send(Message message) {
  const Time now = engine_->now();
  message.sent_at = now;
  ++sent_;
  if (!waiters_.empty()) {
    Waiter waiter = waiters_.front();
    waiters_.pop_front();
    waiter.awaiter->message = message;
    ++received_;
    engine_->schedule(waiter.handle, now);
    return;
  }
  messages_.push_back(message);
  pending_stat_.set(static_cast<double>(messages_.size()), now);
}

Message Mailbox::take() {
  Message message = messages_.front();
  messages_.pop_front();
  pending_stat_.set(static_cast<double>(messages_.size()), engine_->now());
  ++received_;
  return message;
}

double Mailbox::mean_pending() const {
  return pending_stat_.mean(engine_->now());
}

}  // namespace prophet::sim
