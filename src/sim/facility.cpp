#include "prophet/sim/facility.hpp"

#include <algorithm>

namespace prophet::sim {

Facility::Facility(Engine& engine, std::string name, int servers)
    : engine_(&engine), name_(std::move(name)), servers_(servers) {
  if (servers < 1) {
    throw std::invalid_argument("facility needs at least one server");
  }
}

void Facility::grant(Time arrival, Time now) {
  ++busy_;
  busy_stat_.set(busy_, now);
  waits_.record(now - arrival);
}

void Facility::enqueue(std::coroutine_handle<> handle, int priority,
                       Time arrival) {
  const Waiter waiter{handle, priority, arrival, next_seq_++};
  // Insertion sort keeps the deque ordered (priority desc, seq asc).  The
  // common case (uniform priority) appends in O(1).
  auto position = std::find_if(
      waiters_.begin(), waiters_.end(),
      [&](const Waiter& other) { return other.priority < waiter.priority; });
  waiters_.insert(position, waiter);
  queue_stat_.set(static_cast<double>(waiters_.size()), engine_->now());
}

void Facility::release() {
  const Time now = engine_->now();
  if (busy_ == 0) {
    throw std::logic_error("release() of idle facility '" + name_ + "'");
  }
  --busy_;
  busy_stat_.set(busy_, now);
  ++completions_;
  if (!waiters_.empty()) {
    const Waiter waiter = waiters_.front();
    waiters_.pop_front();
    queue_stat_.set(static_cast<double>(waiters_.size()), now);
    grant(waiter.arrival, now);
    engine_->schedule(waiter.handle, now);
  }
}

double Facility::utilization() const {
  const Time now = engine_->now();
  if (now <= 0) {
    return 0;
  }
  return busy_stat_.mean(now) / static_cast<double>(servers_);
}

double Facility::mean_queue_length() const {
  return queue_stat_.mean(engine_->now());
}

}  // namespace prophet::sim
