// The batched expression VM: Compiled::eval_batch and its lane-by-lane
// fallback.  See compile.hpp for the bit-identity contract and
// batch_kernels.hpp for the SIMD kernel selection.
#include <cmath>
#include <cstring>
#include <vector>

#include "batch_kernels.hpp"
#include "prophet/expr/compile.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/obs/obs.hpp"

namespace prophet::expr {

namespace {

/// Scalar view of one lane of a batched call: forwards
/// UserFunctions::call to the batched table's call_lane so the fallback
/// reproduces the scalar VM exactly (same values, same exceptions, same
/// lane order).
class LaneFunctions final : public UserFunctions {
 public:
  LaneFunctions(const BatchUserFunctions* batch, std::size_t lane)
      : batch_(batch), lane_(lane) {}

  [[nodiscard]] double call(int id,
                            std::span<const double> args) const override {
    return batch_->call_lane(id, args, lane_);
  }

 private:
  const BatchUserFunctions* batch_;
  std::size_t lane_;
};

}  // namespace

// The fallback: evaluate every lane through the scalar VM against that
// lane's view of the frame (each bound slot's lane array offset by the
// lane index).  Errors therefore surface from the lowest erroring lane
// with the scalar VM's exact message — the reference semantics the
// batched fast path must (and does) match by re-running through here
// whenever any lane raises.
void Compiled::eval_batch_lanes(const BatchEvalContext& ctx,
                                double* out) const {
  std::vector<double*> frame(ctx.frame.size());
  std::vector<double> args(ctx.args.size());
  for (std::size_t lane = 0; lane < ctx.width; ++lane) {
    for (std::size_t slot = 0; slot < frame.size(); ++slot) {
      frame[slot] =
          ctx.frame[slot] != nullptr ? ctx.frame[slot] + lane : nullptr;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      args[i] = ctx.args[i][lane];
    }
    const LaneFunctions lane_functions(ctx.functions, lane);
    EvalContext scalar;
    scalar.frame = frame;
    scalar.args = args;
    scalar.functions =
        ctx.functions != nullptr ? &lane_functions : nullptr;
    scalar.pid = ctx.pid;
    scalar.tid = ctx.tid;
    scalar.uid = ctx.uid;
    scalar.counters = ctx.counters;
    scalar.budget = ctx.budget;
    out[lane] = eval(scalar);
  }
}

void Compiled::eval_batch(const BatchEvalContext& ctx, double* out) const {
  const std::size_t width = ctx.width;
  if (width == 0) {
    return;
  }
  // Jumps make lanes diverge (short circuits, conditionals): the whole
  // program runs lane-by-lane.  One lane is a scalar eval either way.
  if (width == 1 || !branchless_) {
    eval_batch_lanes(ctx, out);
    return;
  }
  try {
    // Structure-of-arrays operand stack: stack value i occupies `width`
    // contiguous lanes at stack + i * width.  The compiler's max_stack_
    // bounds the footprint; typical programs fit the inline buffer.
    constexpr std::size_t kInlineLanes = 256;
    double inline_stack[kInlineLanes];
    std::vector<double> heap_stack;
    double* stack = inline_stack;
    if (max_stack_ * width > kInlineLanes) {
      heap_stack.resize(max_stack_ * width);
      stack = heap_stack.data();
    }
    // CallUser scratch, sized once up front (capacity persists across
    // calls); programs without calls never touch it.
    std::vector<const double*> call_args;
    std::vector<double> call_out;
    if (calls_user_) {
      call_out.resize(width);
    }
    const detail::BatchKernels& k = detail::batch_kernels();
    std::size_t sp = 0;
    const Instr* code = code_.data();
    const std::size_t n = code_.size();
    // Same counter discipline as the scalar VM, batched: instructions
    // count once per batched dispatch, evals advances by the lane count,
    // and the flush fires on throwing paths too.
    std::uint64_t dispatched = 0;
    struct FlushCounters {
      obs::ExprCounters* counters;
      const std::uint64_t* dispatched;
      std::size_t width;
      ~FlushCounters() {
        if (counters != nullptr) {
          counters->instructions += *dispatched;
          counters->evals += static_cast<std::uint64_t>(width);
          ++counters->batch_evals;
        }
      }
    } flush{ctx.counters, &dispatched, width};
    constexpr std::uint64_t kBudgetStride = 1024;
    for (std::size_t ip = 0; ip < n; ++ip) {
      ++dispatched;
      if (ctx.budget != nullptr &&
          (dispatched & (kBudgetStride - 1)) == 0) {
        ctx.budget->charge_vm_instructions(kBudgetStride, "expr-vm");
      }
      const Instr& in = code[ip];
      switch (in.op) {
        case Op::PushConst:
          k.fill(stack + sp * width, in.value, width);
          ++sp;
          break;
        case Op::LoadSlot: {
          const double* lanes = ctx.frame[static_cast<std::size_t>(in.a)];
          if (lanes == nullptr) {
            // Unbound is lane-uniform; the catch below re-runs
            // lane-by-lane so lane 0 raises with the scalar VM's
            // counter accounting.
            throw EvalError(strings_[in.b]);
          }
          std::memcpy(stack + sp * width, lanes, width * sizeof(double));
          ++sp;
          break;
        }
        case Op::LoadSlotOrPid: {
          const double* lanes = ctx.frame[static_cast<std::size_t>(in.a)];
          if (lanes != nullptr) {
            std::memcpy(stack + sp * width, lanes, width * sizeof(double));
          } else {
            k.fill(stack + sp * width, ctx.pid, width);
          }
          ++sp;
          break;
        }
        case Op::LoadSlotOrTid: {
          const double* lanes = ctx.frame[static_cast<std::size_t>(in.a)];
          if (lanes != nullptr) {
            std::memcpy(stack + sp * width, lanes, width * sizeof(double));
          } else {
            k.fill(stack + sp * width, ctx.tid, width);
          }
          ++sp;
          break;
        }
        case Op::LoadSlotOrUid: {
          const double* lanes = ctx.frame[static_cast<std::size_t>(in.a)];
          if (lanes != nullptr) {
            std::memcpy(stack + sp * width, lanes, width * sizeof(double));
          } else {
            k.fill(stack + sp * width, ctx.uid, width);
          }
          ++sp;
          break;
        }
        case Op::LoadArg: {
          const auto index = static_cast<std::size_t>(in.a);
          if (index < ctx.args.size()) {
            std::memcpy(stack + sp * width, ctx.args[index],
                        width * sizeof(double));
          } else {
            k.fill(stack + sp * width, 0.0, width);
          }
          ++sp;
          break;
        }
        case Op::LoadPid:
          k.fill(stack + sp * width, ctx.pid, width);
          ++sp;
          break;
        case Op::LoadTid:
          k.fill(stack + sp * width, ctx.tid, width);
          ++sp;
          break;
        case Op::LoadUid:
          k.fill(stack + sp * width, ctx.uid, width);
          ++sp;
          break;
        case Op::Neg:
          k.neg(stack + (sp - 1) * width, width);
          break;
        case Op::Not:
          k.logical_not(stack + (sp - 1) * width, width);
          break;
        case Op::Add:
          --sp;
          k.add(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Sub:
          --sp;
          k.sub(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Mul:
          --sp;
          k.mul(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Div:
          --sp;
          k.div(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Mod: {
          // fmod has no exact packed form — same std:: call per lane.
          --sp;
          double* a = stack + (sp - 1) * width;
          const double* b = stack + sp * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::fmod(a[l], b[l]);
          }
          break;
        }
        case Op::Lt:
          --sp;
          k.lt(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Le:
          --sp;
          k.le(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Gt:
          --sp;
          k.gt(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Ge:
          --sp;
          k.ge(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Eq:
          --sp;
          k.eq(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::Ne:
          --sp;
          k.ne(stack + (sp - 1) * width, stack + sp * width, width);
          break;
        case Op::ToBool:
          k.to_bool(stack + (sp - 1) * width, width);
          break;
        case Op::Jump:
        case Op::JumpIfFalse:
        case Op::JumpIfTrue:
          // branchless_ excluded jumps above.
          break;
        case Op::CallUser: {
          if (ctx.functions == nullptr) {
            throw EvalError("unknown function (no user-function table bound)");
          }
          const std::size_t argc = in.b;
          call_args.resize(argc);
          sp -= argc;
          for (std::size_t i = 0; i < argc; ++i) {
            call_args[i] = stack + (sp + i) * width;
          }
          ctx.functions->call_batch(in.a, call_args, call_out.data(), width);
          std::memcpy(stack + sp * width, call_out.data(),
                      width * sizeof(double));
          ++sp;
          break;
        }
        case Op::Throw:
          // Lane-uniform by construction; re-run via the catch below for
          // scalar-exact lazy-error accounting.
          throw EvalError(strings_[static_cast<std::size_t>(in.a)]);
        case Op::Abs: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::fabs(a[l]);
          }
          break;
        }
        case Op::Ceil: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::ceil(a[l]);
          }
          break;
        }
        case Op::Cos: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::cos(a[l]);
          }
          break;
        }
        case Op::Exp: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::exp(a[l]);
          }
          break;
        }
        case Op::Floor: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::floor(a[l]);
          }
          break;
        }
        case Op::Log: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::log(a[l]);
          }
          break;
        }
        case Op::Log10: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::log10(a[l]);
          }
          break;
        }
        case Op::Log2: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::log2(a[l]);
          }
          break;
        }
        case Op::Max: {
          // _mm256_max_pd's NaN semantics differ from std::fmax: stay
          // on the scalar call per lane.
          --sp;
          double* a = stack + (sp - 1) * width;
          const double* b = stack + sp * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::fmax(a[l], b[l]);
          }
          break;
        }
        case Op::Min: {
          --sp;
          double* a = stack + (sp - 1) * width;
          const double* b = stack + sp * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::fmin(a[l], b[l]);
          }
          break;
        }
        case Op::Pow: {
          --sp;
          double* a = stack + (sp - 1) * width;
          const double* b = stack + sp * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::pow(a[l], b[l]);
          }
          break;
        }
        case Op::Round: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::round(a[l]);
          }
          break;
        }
        case Op::Sin: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::sin(a[l]);
          }
          break;
        }
        case Op::Sqrt: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::sqrt(a[l]);
          }
          break;
        }
        case Op::Tan: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::tan(a[l]);
          }
          break;
        }
        case Op::Tanh: {
          double* a = stack + (sp - 1) * width;
          for (std::size_t l = 0; l < width; ++l) {
            a[l] = std::tanh(a[l]);
          }
          break;
        }
      }
    }
    if (ctx.budget != nullptr && (dispatched & (kBudgetStride - 1)) != 0) {
      ctx.budget->charge_vm_instructions(dispatched & (kBudgetStride - 1),
                                         "expr-vm");
    }
    std::memcpy(out, stack + (sp - 1) * width, width * sizeof(double));
    return;
  } catch (const EvalError&) {
    // Some lane raised mid-program (lazy error, user-function failure).
    // Programs are pure, so re-running lane-by-lane reproduces every
    // completed lane's value and surfaces the scalar loop's error: the
    // lowest erroring lane, exact message, scalar counter accounting.
    // Budget exceptions (guard::GuardError) are not caught — a tripped
    // budget must propagate, not retry.
  }
  eval_batch_lanes(ctx, out);
}

}  // namespace prophet::expr
