#include "prophet/expr/analysis.hpp"

#include "prophet/expr/eval.hpp"

namespace prophet::expr {
namespace {

void walk(const Expr& expr, std::set<std::string>* variables,
          std::set<std::string>* functions) {
  switch (expr.kind()) {
    case ExprKind::Number:
      break;
    case ExprKind::Variable:
      if (variables != nullptr) {
        variables->insert(static_cast<const VariableExpr&>(expr).name());
      }
      break;
    case ExprKind::Unary:
      walk(static_cast<const UnaryExpr&>(expr).operand(), variables,
           functions);
      break;
    case ExprKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      walk(binary.lhs(), variables, functions);
      walk(binary.rhs(), variables, functions);
      break;
    }
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      if (functions != nullptr) {
        functions->insert(call.callee());
      }
      for (const auto& arg : call.args()) {
        walk(*arg, variables, functions);
      }
      break;
    }
    case ExprKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      walk(cond.cond(), variables, functions);
      walk(cond.then_branch(), variables, functions);
      walk(cond.else_branch(), variables, functions);
      break;
    }
  }
}

}  // namespace

std::set<std::string> free_variables(const Expr& expr) {
  std::set<std::string> variables;
  walk(expr, &variables, nullptr);
  return variables;
}

std::set<std::string> called_functions(const Expr& expr) {
  std::set<std::string> functions;
  walk(expr, nullptr, &functions);
  return functions;
}

std::set<std::string> called_user_functions(const Expr& expr) {
  std::set<std::string> functions = called_functions(expr);
  for (auto it = functions.begin(); it != functions.end();) {
    if (builtin_arity(*it).has_value()) {
      it = functions.erase(it);
    } else {
      ++it;
    }
  }
  return functions;
}

}  // namespace prophet::expr
