#include "prophet/expr/ast.hpp"

#include <sstream>

namespace prophet::expr {
namespace {

/// Precedence levels used for minimal parenthesization; larger binds
/// tighter.  Mirrors the parser's grammar.
int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::Or:
      return 1;
    case BinaryOp::And:
      return 2;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return 3;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 4;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 5;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      return 6;
  }
  return 0;
}

constexpr int kUnaryPrecedence = 7;
constexpr int kTernaryPrecedence = 0;

std::string format_number(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

void render(const Expr& expr, std::ostream& out, int parent_precedence);

void render_binary(const BinaryExpr& expr, std::ostream& out,
                   int parent_precedence) {
  const int prec = precedence(expr.op());
  const bool needs_parens = prec < parent_precedence;
  if (needs_parens) {
    out << '(';
  }
  render(expr.lhs(), out, prec);
  out << ' ' << to_string(expr.op()) << ' ';
  // All binary operators in the language are left-associative, so the
  // right operand needs parens at equal precedence.
  render(expr.rhs(), out, prec + 1);
  if (needs_parens) {
    out << ')';
  }
}

void render(const Expr& expr, std::ostream& out, int parent_precedence) {
  switch (expr.kind()) {
    case ExprKind::Number:
      out << format_number(static_cast<const NumberExpr&>(expr).value());
      break;
    case ExprKind::Variable:
      out << static_cast<const VariableExpr&>(expr).name();
      break;
    case ExprKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const bool needs_parens = kUnaryPrecedence < parent_precedence;
      if (needs_parens) {
        out << '(';
      }
      out << to_string(unary.op());
      render(unary.operand(), out, kUnaryPrecedence);
      if (needs_parens) {
        out << ')';
      }
      break;
    }
    case ExprKind::Binary:
      render_binary(static_cast<const BinaryExpr&>(expr), out,
                    parent_precedence);
      break;
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      out << call.callee() << '(';
      bool first = true;
      for (const auto& arg : call.args()) {
        if (!first) {
          out << ", ";
        }
        first = false;
        render(*arg, out, 0);
      }
      out << ')';
      break;
    }
    case ExprKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      const bool needs_parens = kTernaryPrecedence < parent_precedence;
      if (needs_parens) {
        out << '(';
      }
      render(cond.cond(), out, 1);
      out << " ? ";
      render(cond.then_branch(), out, 0);
      out << " : ";
      render(cond.else_branch(), out, 0);
      if (needs_parens) {
        out << ')';
      }
      break;
    }
  }
}

}  // namespace

std::string_view to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Sub:
      return "-";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::Mod:
      return "%";
    case BinaryOp::Lt:
      return "<";
    case BinaryOp::Le:
      return "<=";
    case BinaryOp::Gt:
      return ">";
    case BinaryOp::Ge:
      return ">=";
    case BinaryOp::Eq:
      return "==";
    case BinaryOp::Ne:
      return "!=";
    case BinaryOp::And:
      return "&&";
    case BinaryOp::Or:
      return "||";
  }
  return "?";
}

std::string_view to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::Negate:
      return "-";
    case UnaryOp::Not:
      return "!";
  }
  return "?";
}

std::string to_source(const Expr& expr) {
  std::ostringstream out;
  render(expr, out, 0);
  return out.str();
}

bool equal(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) {
    return false;
  }
  switch (a.kind()) {
    case ExprKind::Number:
      return static_cast<const NumberExpr&>(a).value() ==
             static_cast<const NumberExpr&>(b).value();
    case ExprKind::Variable:
      return static_cast<const VariableExpr&>(a).name() ==
             static_cast<const VariableExpr&>(b).name();
    case ExprKind::Unary: {
      const auto& ua = static_cast<const UnaryExpr&>(a);
      const auto& ub = static_cast<const UnaryExpr&>(b);
      return ua.op() == ub.op() && equal(ua.operand(), ub.operand());
    }
    case ExprKind::Binary: {
      const auto& ba = static_cast<const BinaryExpr&>(a);
      const auto& bb = static_cast<const BinaryExpr&>(b);
      return ba.op() == bb.op() && equal(ba.lhs(), bb.lhs()) &&
             equal(ba.rhs(), bb.rhs());
    }
    case ExprKind::Call: {
      const auto& ca = static_cast<const CallExpr&>(a);
      const auto& cb = static_cast<const CallExpr&>(b);
      if (ca.callee() != cb.callee() ||
          ca.args().size() != cb.args().size()) {
        return false;
      }
      for (std::size_t i = 0; i < ca.args().size(); ++i) {
        if (!equal(*ca.args()[i], *cb.args()[i])) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::Conditional: {
      const auto& ca = static_cast<const ConditionalExpr&>(a);
      const auto& cb = static_cast<const ConditionalExpr&>(b);
      return equal(ca.cond(), cb.cond()) &&
             equal(ca.then_branch(), cb.then_branch()) &&
             equal(ca.else_branch(), cb.else_branch());
    }
  }
  return false;
}

}  // namespace prophet::expr
