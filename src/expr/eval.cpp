#include "prophet/expr/eval.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "builtins.hpp"

namespace prophet::expr {
namespace {

using detail::Builtin;

// Sorted by name (builtin_names() exposes this order; find_builtin
// binary-searches it; the compiler's direct-dispatch opcodes follow it).
constexpr std::array<Builtin, 16> kBuiltins{{
    {"abs", 1, [](double x) { return std::fabs(x); }, nullptr},
    {"ceil", 1, [](double x) { return std::ceil(x); }, nullptr},
    {"cos", 1, [](double x) { return std::cos(x); }, nullptr},
    {"exp", 1, [](double x) { return std::exp(x); }, nullptr},
    {"floor", 1, [](double x) { return std::floor(x); }, nullptr},
    {"log", 1, [](double x) { return std::log(x); }, nullptr},
    {"log10", 1, [](double x) { return std::log10(x); }, nullptr},
    {"log2", 1, [](double x) { return std::log2(x); }, nullptr},
    {"max", 2, nullptr, [](double a, double b) { return std::fmax(a, b); }},
    {"min", 2, nullptr, [](double a, double b) { return std::fmin(a, b); }},
    {"pow", 2, nullptr, [](double a, double b) { return std::pow(a, b); }},
    {"round", 1, [](double x) { return std::round(x); }, nullptr},
    {"sin", 1, [](double x) { return std::sin(x); }, nullptr},
    {"sqrt", 1, [](double x) { return std::sqrt(x); }, nullptr},
    {"tan", 1, [](double x) { return std::tan(x); }, nullptr},
    {"tanh", 1, [](double x) { return std::tanh(x); }, nullptr},
}};

using detail::find_builtin;

class EmptyEnvironment final : public Environment {
 public:
  [[nodiscard]] std::optional<double> variable(
      std::string_view) const override {
    return std::nullopt;
  }
  [[nodiscard]] std::optional<double> call(
      std::string_view, std::span<const double>) const override {
    return std::nullopt;
  }
};

}  // namespace

std::optional<double> MapEnvironment::variable(std::string_view name) const {
  const auto it = variables_.find(name);
  if (it == variables_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<double> MapEnvironment::call(std::string_view name,
                                           std::span<const double> args) const {
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    return std::nullopt;
  }
  return it->second(args);
}

const Environment& empty_environment() {
  static const EmptyEnvironment instance;
  return instance;
}

double evaluate(const Expr& expr, const Environment& env) {
  switch (expr.kind()) {
    case ExprKind::Number:
      return static_cast<const NumberExpr&>(expr).value();
    case ExprKind::Variable: {
      const auto& variable = static_cast<const VariableExpr&>(expr);
      if (auto value = env.variable(variable.name())) {
        return *value;
      }
      throw EvalError("unknown variable '" + variable.name() + "'");
    }
    case ExprKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const double value = evaluate(unary.operand(), env);
      switch (unary.op()) {
        case UnaryOp::Negate:
          return -value;
        case UnaryOp::Not:
          return truthy(value) ? 0.0 : 1.0;
      }
      return 0.0;
    }
    case ExprKind::Binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      // Short-circuit operators evaluate the right operand lazily, exactly
      // like the && / || the code generator emits.
      if (binary.op() == BinaryOp::And) {
        if (!truthy(evaluate(binary.lhs(), env))) {
          return 0.0;
        }
        return truthy(evaluate(binary.rhs(), env)) ? 1.0 : 0.0;
      }
      if (binary.op() == BinaryOp::Or) {
        if (truthy(evaluate(binary.lhs(), env))) {
          return 1.0;
        }
        return truthy(evaluate(binary.rhs(), env)) ? 1.0 : 0.0;
      }
      const double lhs = evaluate(binary.lhs(), env);
      const double rhs = evaluate(binary.rhs(), env);
      switch (binary.op()) {
        case BinaryOp::Add:
          return lhs + rhs;
        case BinaryOp::Sub:
          return lhs - rhs;
        case BinaryOp::Mul:
          return lhs * rhs;
        case BinaryOp::Div:
          return lhs / rhs;  // IEEE semantics: inf / nan on zero divisor
        case BinaryOp::Mod:
          return std::fmod(lhs, rhs);
        case BinaryOp::Lt:
          return lhs < rhs ? 1.0 : 0.0;
        case BinaryOp::Le:
          return lhs <= rhs ? 1.0 : 0.0;
        case BinaryOp::Gt:
          return lhs > rhs ? 1.0 : 0.0;
        case BinaryOp::Ge:
          return lhs >= rhs ? 1.0 : 0.0;
        case BinaryOp::Eq:
          return lhs == rhs ? 1.0 : 0.0;
        case BinaryOp::Ne:
          return lhs != rhs ? 1.0 : 0.0;
        case BinaryOp::And:
        case BinaryOp::Or:
          break;  // handled above
      }
      return 0.0;
    }
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      std::vector<double> args;
      args.reserve(call.args().size());
      for (const auto& arg : call.args()) {
        args.push_back(evaluate(*arg, env));
      }
      // User functions shadow built-ins, so models can redefine e.g. `log`.
      if (auto result = env.call(call.callee(), args)) {
        return *result;
      }
      const Builtin* builtin = find_builtin(call.callee());
      if (builtin == nullptr) {
        throw EvalError("unknown function '" + call.callee() + "'");
      }
      if (static_cast<int>(args.size()) != builtin->arity) {
        throw EvalError("function '" + call.callee() + "' expects " +
                        std::to_string(builtin->arity) + " argument(s), got " +
                        std::to_string(args.size()));
      }
      return builtin->arity == 1 ? builtin->fn1(args[0])
                                 : builtin->fn2(args[0], args[1]);
    }
    case ExprKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      return truthy(evaluate(cond.cond(), env))
                 ? evaluate(cond.then_branch(), env)
                 : evaluate(cond.else_branch(), env);
    }
  }
  throw EvalError("corrupt expression tree");
}

std::span<const std::string_view> builtin_names() {
  static const std::array<std::string_view, kBuiltins.size()> names = [] {
    std::array<std::string_view, kBuiltins.size()> out{};
    for (std::size_t i = 0; i < kBuiltins.size(); ++i) {
      out[i] = kBuiltins[i].name;
    }
    return out;
  }();
  return names;
}

std::optional<int> builtin_arity(std::string_view name) {
  if (const Builtin* builtin = find_builtin(name)) {
    return builtin->arity;
  }
  return std::nullopt;
}

namespace detail {

std::span<const Builtin> builtins() { return kBuiltins; }

const Builtin* find_builtin(std::string_view name) {
  const auto it = std::lower_bound(
      kBuiltins.begin(), kBuiltins.end(), name,
      [](const Builtin& builtin, std::string_view key) {
        return builtin.name < key;
      });
  if (it == kBuiltins.end() || it->name != name) {
    return nullptr;
  }
  return &*it;
}

}  // namespace detail

}  // namespace prophet::expr
