// Internal: the built-in function table shared by the tree-walking
// evaluator (eval.cpp) and the bytecode compiler (compile.cpp).  Not
// installed; the public surface is builtin_names()/builtin_arity() in
// eval.hpp and the per-built-in opcodes in compile.hpp.
#pragma once

#include <span>
#include <string_view>

namespace prophet::expr::detail {

/// One built-in math function: name, arity and the evaluation callback
/// for that arity (the other is null).
struct Builtin {
  std::string_view name;
  int arity;
  double (*fn1)(double);
  double (*fn2)(double, double);
};

/// The full table, sorted by name (the order builtin_names() exposes and
/// the compiler's per-built-in opcodes follow).
[[nodiscard]] std::span<const Builtin> builtins();

/// Binary search over builtins(); null when `name` is not a built-in.
[[nodiscard]] const Builtin* find_builtin(std::string_view name);

}  // namespace prophet::expr::detail
