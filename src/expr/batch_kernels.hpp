// Internal: lane-array kernels for the batched expression VM
// (Compiled::eval_batch).  Each kernel applies one opcode across a
// contiguous array of scenario lanes.  Two implementations exist — a
// portable loop and an AVX2 version built with a per-function target
// attribute — selected once per process by runtime CPU probe, the way
// oryx picks lexer-sse4_1.c over the generic lexer.
//
// Both implementations are IEEE-exact and bit-identical to the scalar
// VM: packed add/sub/mul/div are the same IEEE-754 operations as their
// scalar forms, negation is a sign-bit flip either way, and the ordered
// (OQ) / unordered (UQ) compare predicates are chosen to reproduce C's
// NaN behavior for each operator.  fmax/fmin, fmod and the libm
// built-ins are deliberately *not* kernelized: _mm256_max_pd's NaN
// semantics differ from std::fmax, so those opcodes stay lane-by-lane
// scalar calls in the VM.
#pragma once

#include <cstddef>
#include <string_view>

namespace prophet::expr::detail {

/// In-place binary kernel: a[i] = a[i] OP b[i] for i in [0, n).
using BinaryKernel = void (*)(double* a, const double* b, std::size_t n);

/// In-place unary kernel: a[i] = OP a[i] for i in [0, n).
using UnaryKernel = void (*)(double* a, std::size_t n);

/// One function pointer per kernelized opcode.  Comparisons yield
/// 1.0 / 0.0 like the scalar VM.
struct BatchKernels {
  BinaryKernel add;
  BinaryKernel sub;
  BinaryKernel mul;
  BinaryKernel div;
  BinaryKernel lt;
  BinaryKernel le;
  BinaryKernel gt;
  BinaryKernel ge;
  BinaryKernel eq;
  BinaryKernel ne;
  UnaryKernel neg;
  UnaryKernel logical_not;  // x != 0.0 ? 0.0 : 1.0
  UnaryKernel to_bool;      // x != 0.0 ? 1.0 : 0.0
  void (*fill)(double* dst, double value, std::size_t n);
};

/// The kernel set for this process: AVX2 when the CPU supports it, the
/// generic loops otherwise.  Probed once; thread-safe.
[[nodiscard]] const BatchKernels& batch_kernels();

/// Which set batch_kernels() selected: "avx2" or "generic".  Exposed
/// for docs, tests and the vectorization doc's measured table.
[[nodiscard]] std::string_view batch_kernel_name();

/// The portable loop implementations (differential tests compare the
/// dispatched set against these).
[[nodiscard]] const BatchKernels& generic_batch_kernels();

/// The AVX2 implementations, or null when this build targets a
/// non-x86-64 architecture.  Callers must still check the CPU at run
/// time (batch_kernels() does both).
[[nodiscard]] const BatchKernels* avx2_batch_kernels();

}  // namespace prophet::expr::detail
