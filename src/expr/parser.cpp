#include "prophet/expr/parser.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <vector>

namespace prophet::expr {
namespace {

enum class TokenKind {
  Number,
  Name,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Bang,
  Question,
  Colon,
  Comma,
  LParen,
  RParen,
  End,
};

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        tokens.push_back(lex_number());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(lex_name());
        continue;
      }
      tokens.push_back(lex_operator());
    }
    tokens.push_back({TokenKind::End, "", 0.0, text_.size()});
    return tokens;
  }

 private:
  Token lex_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      std::size_t exp = pos_ + 1;
      if (exp < text_.size() && (text_[exp] == '+' || text_[exp] == '-')) {
        ++exp;
      }
      if (exp < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[exp]))) {
        pos_ = exp;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
    }
    const std::string spelled(text_.substr(start, pos_ - start));
    // std::from_chars for doubles is incomplete on some libstdc++
    // versions; strtod on a NUL-terminated copy is portable and exact.
    const double value = std::strtod(spelled.c_str(), nullptr);
    return {TokenKind::Number, spelled, value, start};
  }

  Token lex_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return {TokenKind::Name, std::string(text_.substr(start, pos_ - start)),
            0.0, start};
  }

  Token lex_operator() {
    const std::size_t start = pos_;
    auto two = [&](char a, char b) {
      return text_[pos_] == a && pos_ + 1 < text_.size() &&
             text_[pos_ + 1] == b;
    };
    auto make = [&](TokenKind kind, std::size_t len) {
      Token token{kind, std::string(text_.substr(start, len)), 0.0, start};
      pos_ += len;
      return token;
    };
    if (two('<', '=')) return make(TokenKind::Le, 2);
    if (two('>', '=')) return make(TokenKind::Ge, 2);
    if (two('=', '=')) return make(TokenKind::EqEq, 2);
    if (two('!', '=')) return make(TokenKind::NotEq, 2);
    if (two('&', '&')) return make(TokenKind::AndAnd, 2);
    if (two('|', '|')) return make(TokenKind::OrOr, 2);
    switch (text_[pos_]) {
      case '+':
        return make(TokenKind::Plus, 1);
      case '-':
        return make(TokenKind::Minus, 1);
      case '*':
        return make(TokenKind::Star, 1);
      case '/':
        return make(TokenKind::Slash, 1);
      case '%':
        return make(TokenKind::Percent, 1);
      case '<':
        return make(TokenKind::Lt, 1);
      case '>':
        return make(TokenKind::Gt, 1);
      case '!':
        return make(TokenKind::Bang, 1);
      case '?':
        return make(TokenKind::Question, 1);
      case ':':
        return make(TokenKind::Colon, 1);
      case ',':
        return make(TokenKind::Comma, 1);
      case '(':
        return make(TokenKind::LParen, 1);
      case ')':
        return make(TokenKind::RParen, 1);
      default:
        throw SyntaxError(std::string("unexpected character '") +
                              text_[pos_] + "'",
                          start);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse_expression() {
    ExprPtr expr = parse_ternary();
    expect(TokenKind::End, "end of expression");
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  bool match(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(TokenKind kind, std::string_view what) {
    if (!match(kind)) {
      throw SyntaxError("expected " + std::string(what) + " but found '" +
                            (peek().kind == TokenKind::End ? "<end>"
                                                           : peek().text) +
                            "'",
                        peek().offset);
    }
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!match(TokenKind::Question)) {
      return cond;
    }
    ExprPtr then = parse_ternary();
    expect(TokenKind::Colon, "':'");
    ExprPtr otherwise = parse_ternary();
    return std::make_unique<ConditionalExpr>(std::move(cond), std::move(then),
                                             std::move(otherwise));
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (match(TokenKind::OrOr)) {
      lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs),
                                         parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_equality();
    while (match(TokenKind::AndAnd)) {
      lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs),
                                         parse_equality());
    }
    return lhs;
  }

  ExprPtr parse_equality() {
    ExprPtr lhs = parse_relational();
    for (;;) {
      if (match(TokenKind::EqEq)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Eq, std::move(lhs),
                                           parse_relational());
      } else if (match(TokenKind::NotEq)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Ne, std::move(lhs),
                                           parse_relational());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_relational() {
    ExprPtr lhs = parse_additive();
    for (;;) {
      if (match(TokenKind::Lt)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Lt, std::move(lhs),
                                           parse_additive());
      } else if (match(TokenKind::Le)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Le, std::move(lhs),
                                           parse_additive());
      } else if (match(TokenKind::Gt)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Gt, std::move(lhs),
                                           parse_additive());
      } else if (match(TokenKind::Ge)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Ge, std::move(lhs),
                                           parse_additive());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      if (match(TokenKind::Plus)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Add, std::move(lhs),
                                           parse_multiplicative());
      } else if (match(TokenKind::Minus)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Sub, std::move(lhs),
                                           parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (match(TokenKind::Star)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Mul, std::move(lhs),
                                           parse_unary());
      } else if (match(TokenKind::Slash)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Div, std::move(lhs),
                                           parse_unary());
      } else if (match(TokenKind::Percent)) {
        lhs = std::make_unique<BinaryExpr>(BinaryOp::Mod, std::move(lhs),
                                           parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    if (match(TokenKind::Minus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::Negate, parse_unary());
    }
    if (match(TokenKind::Bang)) {
      return std::make_unique<UnaryExpr>(UnaryOp::Not, parse_unary());
    }
    if (match(TokenKind::Plus)) {  // unary plus is a no-op
      return parse_unary();
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::Number: {
        advance();
        return std::make_unique<NumberExpr>(token.number);
      }
      case TokenKind::Name: {
        advance();
        if (!match(TokenKind::LParen)) {
          return std::make_unique<VariableExpr>(token.text);
        }
        std::vector<ExprPtr> args;
        if (peek().kind != TokenKind::RParen) {
          args.push_back(parse_ternary());
          while (match(TokenKind::Comma)) {
            args.push_back(parse_ternary());
          }
        }
        expect(TokenKind::RParen, "')'");
        return std::make_unique<CallExpr>(token.text, std::move(args));
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr inner = parse_ternary();
        expect(TokenKind::RParen, "')'");
        return inner;
      }
      default:
        throw SyntaxError(
            "expected expression but found '" +
                (token.kind == TokenKind::End ? "<end>" : token.text) + "'",
            token.offset);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

SyntaxError::SyntaxError(const std::string& message, std::size_t offset)
    : std::runtime_error("expression syntax error at offset " +
                         std::to_string(offset) + ": " + message),
      offset_(offset) {}

ExprPtr parse(std::string_view text) {
  return Parser(Lexer(text).tokenize()).parse_expression();
}

bool parses(std::string_view text) {
  try {
    (void)parse(text);
    return true;
  } catch (const SyntaxError&) {
    return false;
  }
}

}  // namespace prophet::expr
