#include "prophet/expr/cppgen.hpp"

#include <sstream>

#include "prophet/expr/eval.hpp"

namespace prophet::expr {
namespace {

// Precedence table mirrors C++ so emitted code keeps the source meaning
// with minimal parentheses.
int cpp_precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::Or:
      return 1;
    case BinaryOp::And:
      return 2;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return 3;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 4;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 5;
    case BinaryOp::Mul:
    case BinaryOp::Div:
      return 6;
    case BinaryOp::Mod:
      return 7;  // emitted as std::fmod(...) — a call, effectively primary
  }
  return 0;
}

constexpr int kUnaryPrec = 7;

std::string cpp_number(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  std::string text = out.str();
  // Ensure the literal is a double literal, not an int literal, so that
  // e.g. 1 / P performs floating division in the generated code exactly
  // as the interpreter does.
  if (text.find_first_of(".eEnN") == std::string::npos) {
    text += ".0";
  }
  return text;
}

/// Maps a built-in function name to its <cmath> spelling.
std::string cpp_builtin(const std::string& name) {
  if (name == "abs") {
    return "std::fabs";
  }
  if (name == "min") {
    return "std::fmin";
  }
  if (name == "max") {
    return "std::fmax";
  }
  return "std::" + name;
}

void render(const Expr& expr, std::ostream& out, int parent_prec);

void render_binary(const BinaryExpr& expr, std::ostream& out,
                   int parent_prec) {
  if (expr.op() == BinaryOp::Mod) {
    out << "std::fmod(";
    render(expr.lhs(), out, 0);
    out << ", ";
    render(expr.rhs(), out, 0);
    out << ')';
    return;
  }
  const int prec = cpp_precedence(expr.op());
  const bool parens = prec < parent_prec;
  if (parens) {
    out << '(';
  }
  render(expr.lhs(), out, prec);
  out << ' ' << to_string(expr.op()) << ' ';
  render(expr.rhs(), out, prec + 1);
  if (parens) {
    out << ')';
  }
}

void render(const Expr& expr, std::ostream& out, int parent_prec) {
  switch (expr.kind()) {
    case ExprKind::Number:
      out << cpp_number(static_cast<const NumberExpr&>(expr).value());
      break;
    case ExprKind::Variable:
      out << static_cast<const VariableExpr&>(expr).name();
      break;
    case ExprKind::Unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const bool parens = kUnaryPrec < parent_prec;
      if (parens) {
        out << '(';
      }
      out << to_string(unary.op());
      render(unary.operand(), out, kUnaryPrec);
      if (parens) {
        out << ')';
      }
      break;
    }
    case ExprKind::Binary:
      render_binary(static_cast<const BinaryExpr&>(expr), out, parent_prec);
      break;
    case ExprKind::Call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      const bool builtin = builtin_arity(call.callee()).has_value();
      out << (builtin ? cpp_builtin(call.callee()) : call.callee()) << '(';
      bool first = true;
      for (const auto& arg : call.args()) {
        if (!first) {
          out << ", ";
        }
        first = false;
        render(*arg, out, 0);
      }
      out << ')';
      break;
    }
    case ExprKind::Conditional: {
      const auto& cond = static_cast<const ConditionalExpr&>(expr);
      const bool parens = parent_prec > 0;
      if (parens) {
        out << '(';
      }
      render(cond.cond(), out, 1);
      out << " ? ";
      render(cond.then_branch(), out, 0);
      out << " : ";
      render(cond.else_branch(), out, 0);
      if (parens) {
        out << ')';
      }
      break;
    }
  }
}

}  // namespace

std::string to_cpp(const Expr& expr) {
  std::ostringstream out;
  render(expr, out, 0);
  return out.str();
}

}  // namespace prophet::expr
