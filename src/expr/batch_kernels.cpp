// Generic lane kernels and the runtime CPU dispatch for the batched
// expression VM.  See batch_kernels.hpp for the bit-identity contract.
#include "batch_kernels.hpp"

namespace prophet::expr::detail {

namespace {

// The portable loops: plain double expressions, so the compiler may
// auto-vectorize them with whatever the build's baseline ISA offers —
// every lane still goes through the exact scalar-VM operation.

void add_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] + b[i];
  }
}

void sub_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] - b[i];
  }
}

void mul_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] * b[i];
  }
}

void div_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] / b[i];
  }
}

void lt_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] < b[i] ? 1.0 : 0.0;
  }
}

void le_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] <= b[i] ? 1.0 : 0.0;
  }
}

void gt_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] > b[i] ? 1.0 : 0.0;
  }
}

void ge_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] >= b[i] ? 1.0 : 0.0;
  }
}

void eq_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] == b[i] ? 1.0 : 0.0;
  }
}

void ne_generic(double* a, const double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] != b[i] ? 1.0 : 0.0;
  }
}

void neg_generic(double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = -a[i];
  }
}

void not_generic(double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] != 0.0 ? 0.0 : 1.0;
  }
}

void to_bool_generic(double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] != 0.0 ? 1.0 : 0.0;
  }
}

void fill_generic(double* dst, double value, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = value;
  }
}

constexpr BatchKernels kGeneric = {
    add_generic, sub_generic, mul_generic, div_generic,
    lt_generic,  le_generic,  gt_generic,  ge_generic,
    eq_generic,  ne_generic,  neg_generic, not_generic,
    to_bool_generic, fill_generic,
};

bool cpu_has_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

const BatchKernels& generic_batch_kernels() { return kGeneric; }

const BatchKernels& batch_kernels() {
  static const BatchKernels* const chosen = [] {
    const BatchKernels* simd = avx2_batch_kernels();
    return simd != nullptr && cpu_has_avx2() ? simd : &kGeneric;
  }();
  return *chosen;
}

std::string_view batch_kernel_name() {
  return &batch_kernels() == &kGeneric ? "generic" : "avx2";
}

}  // namespace prophet::expr::detail
