// AVX2 lane kernels for the batched expression VM.  Built with
// per-function `target("avx2")` attributes so the translation unit
// compiles under the project's baseline flags; batch_kernels() only
// dispatches here after __builtin_cpu_supports("avx2") says the CPU can
// run them.
//
// Bit-identity notes (the reason each kernel is safe):
//   - vaddpd/vsubpd/vmulpd/vdivpd are the same correctly-rounded
//     IEEE-754 operations as their scalar forms — identical results for
//     every input, NaN payloads included.
//   - negation is a sign-bit XOR, exactly what scalar `-x` compiles to.
//   - compares use the ordered-quiet (OQ) predicates so NaN operands
//     compare false like C's <, <=, >, >=, ==; != uses unordered-quiet
//     (UQ) so NaN != x is true like C.  The mask is ANDed with 1.0 to
//     produce the VM's exact 1.0 / 0.0 encoding.
//   - fmax/fmin/fmod and the libm built-ins are NOT implemented here:
//     _mm256_max_pd propagates NaN differently from std::fmax, so the
//     VM keeps those opcodes on scalar std:: calls per lane.
#include "batch_kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <immintrin.h>

namespace prophet::expr::detail {

namespace {

#define PROPHET_AVX2 __attribute__((target("avx2")))

PROPHET_AVX2 void add_avx2(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    a[i] = a[i] + b[i];
  }
}

PROPHET_AVX2 void sub_avx2(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    a[i] = a[i] - b[i];
  }
}

PROPHET_AVX2 void mul_avx2(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    a[i] = a[i] * b[i];
  }
}

PROPHET_AVX2 void div_avx2(double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_div_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    a[i] = a[i] / b[i];
  }
}

// Compare kernels: mask = cmp(a, b, PRED); result = mask & 1.0.  The
// scalar tails spell out the same C comparison the predicate encodes.
#define PROPHET_AVX2_CMP(NAME, PRED, OPER)                                \
  PROPHET_AVX2 void NAME(double* a, const double* b, std::size_t n) {     \
    const __m256d ones = _mm256_set1_pd(1.0);                             \
    std::size_t i = 0;                                                    \
    for (; i + 4 <= n; i += 4) {                                          \
      const __m256d mask =                                                \
          _mm256_cmp_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),   \
                        (PRED));                                          \
      _mm256_storeu_pd(a + i, _mm256_and_pd(mask, ones));                 \
    }                                                                     \
    for (; i < n; ++i) {                                                  \
      a[i] = a[i] OPER b[i] ? 1.0 : 0.0;                                  \
    }                                                                     \
  }

PROPHET_AVX2_CMP(lt_avx2, _CMP_LT_OQ, <)
PROPHET_AVX2_CMP(le_avx2, _CMP_LE_OQ, <=)
PROPHET_AVX2_CMP(gt_avx2, _CMP_GT_OQ, >)
PROPHET_AVX2_CMP(ge_avx2, _CMP_GE_OQ, >=)
PROPHET_AVX2_CMP(eq_avx2, _CMP_EQ_OQ, ==)
PROPHET_AVX2_CMP(ne_avx2, _CMP_NEQ_UQ, !=)

#undef PROPHET_AVX2_CMP

PROPHET_AVX2 void neg_avx2(double* a, std::size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_xor_pd(_mm256_loadu_pd(a + i), sign));
  }
  for (; i < n; ++i) {
    a[i] = -a[i];
  }
}

PROPHET_AVX2 void not_avx2(double* a, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // x != 0.0 ? 0.0 : 1.0  ==  (x == 0.0) & 1.0; NaN == 0.0 is false,
    // so NaN maps to 0.0 exactly like the scalar VM.
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(a + i, _mm256_and_pd(mask, ones));
  }
  for (; i < n; ++i) {
    a[i] = a[i] != 0.0 ? 0.0 : 1.0;
  }
}

PROPHET_AVX2 void to_bool_avx2(double* a, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // x != 0.0 ? 1.0 : 0.0 with NaN != 0.0 true — hence NEQ_UQ.
    const __m256d mask =
        _mm256_cmp_pd(_mm256_loadu_pd(a + i), zero, _CMP_NEQ_UQ);
    _mm256_storeu_pd(a + i, _mm256_and_pd(mask, ones));
  }
  for (; i < n; ++i) {
    a[i] = a[i] != 0.0 ? 1.0 : 0.0;
  }
}

PROPHET_AVX2 void fill_avx2(double* dst, double value, std::size_t n) {
  const __m256d v = _mm256_set1_pd(value);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, v);
  }
  for (; i < n; ++i) {
    dst[i] = value;
  }
}

#undef PROPHET_AVX2

constexpr BatchKernels kAvx2 = {
    add_avx2, sub_avx2, mul_avx2, div_avx2,
    lt_avx2,  le_avx2,  gt_avx2,  ge_avx2,
    eq_avx2,  ne_avx2,  neg_avx2, not_avx2,
    to_bool_avx2, fill_avx2,
};

}  // namespace

const BatchKernels* avx2_batch_kernels() { return &kAvx2; }

}  // namespace prophet::expr::detail

#else  // non-x86-64 build: no AVX2 kernel set.

namespace prophet::expr::detail {

const BatchKernels* avx2_batch_kernels() { return nullptr; }

}  // namespace prophet::expr::detail

#endif
