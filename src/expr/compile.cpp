#include "prophet/expr/compile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>

#include "builtins.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/obs/obs.hpp"

namespace prophet::expr {

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

Slot SymbolTable::add_variable(std::string name) {
  if (const auto it = slot_index_.find(std::string_view(name));
      it != slot_index_.end()) {
    return static_cast<Slot>(it->second);
  }
  const auto slot = static_cast<Slot>(slots_.size());
  slot_index_.emplace(name, slot);
  slots_.push_back(std::move(name));
  return slot;
}

void SymbolTable::bind_ambient(std::string name, Ambient kind) {
  for (auto& [existing, existing_kind] : ambients_) {
    if (existing == name) {
      existing_kind = kind;
      return;
    }
  }
  ambients_.emplace_back(std::move(name), kind);
}

void SymbolTable::bind_constant(std::string name, double value) {
  for (auto& [existing, existing_value] : constants_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  constants_.emplace_back(std::move(name), value);
}

int SymbolTable::add_function(std::string name) {
  if (const auto it = function_index_.find(std::string_view(name));
      it != function_index_.end()) {
    return static_cast<int>(it->second);
  }
  const auto id = static_cast<int>(functions_.size());
  function_index_.emplace(name, static_cast<std::uint32_t>(id));
  functions_.push_back(std::move(name));
  return id;
}

void SymbolTable::add_parameter(std::string name) {
  parameters_.push_back(std::move(name));
}

std::optional<Slot> SymbolTable::slot_of(std::string_view name) const {
  if (const auto it = slot_index_.find(name); it != slot_index_.end()) {
    return static_cast<Slot>(it->second);
  }
  return std::nullopt;
}

const std::string& SymbolTable::name_of(Slot slot) const {
  return slots_.at(slot);
}

std::optional<int> SymbolTable::function_id(std::string_view name) const {
  if (const auto it = function_index_.find(name);
      it != function_index_.end()) {
    return static_cast<int>(it->second);
  }
  return std::nullopt;
}

std::optional<Ambient> SymbolTable::ambient_of(std::string_view name) const {
  for (const auto& [existing, kind] : ambients_) {
    if (existing == name) {
      return kind;
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

/// Lowers one Expr tree: recursive emission with constant folding, exact
/// algebraic identities and short-circuit elimination, plus stack-depth
/// bookkeeping across the branchy encodings of && / || / ?:.
class Compiler {
 public:
  explicit Compiler(const SymbolTable& table) : table_(table) {}

  [[nodiscard]] Compiled run(const Expr& expr) {
    emit(expr);
    assert(depth_ == 1);
    std::sort(out_.slots_.begin(), out_.slots_.end());
    out_.slots_.erase(std::unique(out_.slots_.begin(), out_.slots_.end()),
                      out_.slots_.end());
    out_.max_stack_ = max_depth_;
    // Batched-evaluation classification: eval_batch's instruction-stepped
    // fast path requires straight-line code, and a CallUser anywhere
    // means the host must supply a BatchUserFunctions table.
    for (const Instr& in : out_.code_) {
      if (in.op == Op::Jump || in.op == Op::JumpIfFalse ||
          in.op == Op::JumpIfTrue) {
        out_.branchless_ = false;
      } else if (in.op == Op::CallUser) {
        out_.calls_user_ = true;
      }
    }
    return std::move(out_);
  }

 private:
  /// Positional-parameter index of `name`, if declared (first wins, like
  /// the tree walker's FunctionEnv scan).
  [[nodiscard]] std::optional<int> parameter_index(
      const std::string& name) const {
    for (std::size_t i = 0; i < table_.parameters_.size(); ++i) {
      if (table_.parameters_[i] == name) {
        return static_cast<int>(i);
      }
    }
    return std::nullopt;
  }

  /// Compile-time constant binding of `name` — only when no
  /// higher-precedence resolution (parameter, slot) exists.
  [[nodiscard]] std::optional<double> constant_binding(
      const std::string& name) const {
    if (parameter_index(name) || table_.slot_of(name)) {
      return std::nullopt;
    }
    for (const auto& [existing, value] : table_.constants_) {
      if (existing == name) {
        return value;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] static bool truthy_const(double value) {
    return value != 0.0;
  }

  /// Evaluates `e` to a constant when every reachable leaf folds,
  /// honoring short-circuit semantics (a constant falsy `&&` left side
  /// makes the whole expression constant regardless of the right side,
  /// exactly as the tree walker never evaluates it).  Memoized by node:
  /// emit() and emit_binary() both consult fold results for the same
  /// subtrees, which would otherwise make compilation quadratic in
  /// expression size.
  [[nodiscard]] std::optional<double> fold(const Expr& e) const {
    if (const auto cached = fold_cache_.find(&e);
        cached != fold_cache_.end()) {
      return cached->second;
    }
    const auto result = fold_uncached(e);
    fold_cache_.emplace(&e, result);
    return result;
  }

  [[nodiscard]] std::optional<double> fold_uncached(const Expr& e) const {
    switch (e.kind()) {
      case ExprKind::Number:
        return static_cast<const NumberExpr&>(e).value();
      case ExprKind::Variable:
        return constant_binding(static_cast<const VariableExpr&>(e).name());
      case ExprKind::Unary: {
        const auto& unary = static_cast<const UnaryExpr&>(e);
        const auto value = fold(unary.operand());
        if (!value) {
          return std::nullopt;
        }
        return unary.op() == UnaryOp::Negate
                   ? -*value
                   : (truthy_const(*value) ? 0.0 : 1.0);
      }
      case ExprKind::Binary: {
        const auto& binary = static_cast<const BinaryExpr&>(e);
        const auto lhs = fold(binary.lhs());
        if (binary.op() == BinaryOp::And) {
          if (!lhs) {
            return std::nullopt;
          }
          if (!truthy_const(*lhs)) {
            return 0.0;  // right side never evaluated
          }
          const auto rhs = fold(binary.rhs());
          if (!rhs) {
            return std::nullopt;
          }
          return truthy_const(*rhs) ? 1.0 : 0.0;
        }
        if (binary.op() == BinaryOp::Or) {
          if (!lhs) {
            return std::nullopt;
          }
          if (truthy_const(*lhs)) {
            return 1.0;
          }
          const auto rhs = fold(binary.rhs());
          if (!rhs) {
            return std::nullopt;
          }
          return truthy_const(*rhs) ? 1.0 : 0.0;
        }
        const auto rhs = fold(binary.rhs());
        if (!lhs || !rhs) {
          return std::nullopt;
        }
        switch (binary.op()) {
          case BinaryOp::Add:
            return *lhs + *rhs;
          case BinaryOp::Sub:
            return *lhs - *rhs;
          case BinaryOp::Mul:
            return *lhs * *rhs;
          case BinaryOp::Div:
            return *lhs / *rhs;  // IEEE inf/nan, same as at run time
          case BinaryOp::Mod:
            return std::fmod(*lhs, *rhs);
          case BinaryOp::Lt:
            return *lhs < *rhs ? 1.0 : 0.0;
          case BinaryOp::Le:
            return *lhs <= *rhs ? 1.0 : 0.0;
          case BinaryOp::Gt:
            return *lhs > *rhs ? 1.0 : 0.0;
          case BinaryOp::Ge:
            return *lhs >= *rhs ? 1.0 : 0.0;
          case BinaryOp::Eq:
            return *lhs == *rhs ? 1.0 : 0.0;
          case BinaryOp::Ne:
            return *lhs != *rhs ? 1.0 : 0.0;
          case BinaryOp::And:
          case BinaryOp::Or:
            break;  // handled above
        }
        return std::nullopt;
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const CallExpr&>(e);
        // User functions can read globals: never folded.
        if (table_.function_id(call.callee())) {
          return std::nullopt;
        }
        const detail::Builtin* builtin =
            detail::find_builtin(call.callee());
        if (builtin == nullptr ||
            static_cast<int>(call.args().size()) != builtin->arity) {
          return std::nullopt;  // lazily-thrown error path
        }
        std::vector<double> args;
        args.reserve(call.args().size());
        for (const auto& arg : call.args()) {
          const auto value = fold(*arg);
          if (!value) {
            return std::nullopt;
          }
          args.push_back(*value);
        }
        // Same libm call the VM would make — bit-identical by
        // construction on the machine that compiles and evaluates.
        return builtin->arity == 1 ? builtin->fn1(args[0])
                                   : builtin->fn2(args[0], args[1]);
      }
      case ExprKind::Conditional: {
        const auto& cond = static_cast<const ConditionalExpr&>(e);
        const auto chosen = fold(cond.cond());
        if (!chosen) {
          return std::nullopt;
        }
        return fold(truthy_const(*chosen) ? cond.then_branch()
                                          : cond.else_branch());
      }
    }
    return std::nullopt;
  }

  // --- emission helpers ----------------------------------------------------

  void note_push() {
    ++depth_;
    max_depth_ = std::max(max_depth_, depth_);
  }

  void push_const(double value) {
    out_.code_.push_back({Op::PushConst, 0, 0, value});
    note_push();
  }

  std::uint32_t intern_string(std::string text) {
    for (std::size_t i = 0; i < out_.strings_.size(); ++i) {
      if (out_.strings_[i] == text) {
        return static_cast<std::uint32_t>(i);
      }
    }
    out_.strings_.push_back(std::move(text));
    return static_cast<std::uint32_t>(out_.strings_.size() - 1);
  }

  /// Emits a forward jump with an unpatched target; returns its index.
  std::size_t emit_jump(Op op) {
    out_.code_.push_back({op, 0, 0, 0});
    if (op != Op::Jump) {
      --depth_;  // conditional jumps pop their operand
    }
    return out_.code_.size() - 1;
  }

  void patch_jump(std::size_t at) {
    out_.code_[at].a = static_cast<std::int32_t>(out_.code_.size());
  }

  void emit_load(const std::string& name) {
    if (const auto param = parameter_index(name)) {
      out_.code_.push_back({Op::LoadArg, 0, *param, 0});
      note_push();
      return;
    }
    if (const auto slot = table_.slot_of(name)) {
      out_.slots_.push_back(*slot);
      const auto ambient = table_.ambient_of(name);
      Op op = Op::LoadSlot;
      std::uint16_t b = 0;
      if (ambient == Ambient::Pid) {
        op = Op::LoadSlotOrPid;
        out_.uses_pid_tid_ = true;
      } else if (ambient == Ambient::Tid) {
        op = Op::LoadSlotOrTid;
        out_.uses_pid_tid_ = true;
      } else if (ambient == Ambient::Uid) {
        op = Op::LoadSlotOrUid;
      } else {
        b = static_cast<std::uint16_t>(
            intern_string("unknown variable '" + name + "'"));
      }
      out_.code_.push_back({op, b, static_cast<std::int32_t>(*slot), 0});
      note_push();
      return;
    }
    if (const auto constant = constant_binding(name)) {
      push_const(*constant);
      return;
    }
    if (const auto ambient = table_.ambient_of(name)) {
      Op op = Op::LoadUid;
      if (*ambient == Ambient::Pid) {
        op = Op::LoadPid;
        out_.uses_pid_tid_ = true;
      } else if (*ambient == Ambient::Tid) {
        op = Op::LoadTid;
        out_.uses_pid_tid_ = true;
      }
      out_.code_.push_back({op, 0, 0, 0});
      note_push();
      return;
    }
    emit_throw("unknown variable '" + name + "'");
  }

  /// Lazily-raised error: evaluating this instruction throws the exact
  /// message the tree walker produces for the same defect.  Counts as a
  /// push so surrounding stack accounting stays balanced (it never
  /// actually pushes — the throw unwinds the evaluation).
  void emit_throw(std::string message) {
    out_.code_.push_back(
        {Op::Throw, 0,
         static_cast<std::int32_t>(intern_string(std::move(message))), 0});
    note_push();
  }

  void emit_binary_op(BinaryOp op) {
    Op lowered = Op::Add;
    switch (op) {
      case BinaryOp::Add:
        lowered = Op::Add;
        break;
      case BinaryOp::Sub:
        lowered = Op::Sub;
        break;
      case BinaryOp::Mul:
        lowered = Op::Mul;
        break;
      case BinaryOp::Div:
        lowered = Op::Div;
        break;
      case BinaryOp::Mod:
        lowered = Op::Mod;
        break;
      case BinaryOp::Lt:
        lowered = Op::Lt;
        break;
      case BinaryOp::Le:
        lowered = Op::Le;
        break;
      case BinaryOp::Gt:
        lowered = Op::Gt;
        break;
      case BinaryOp::Ge:
        lowered = Op::Ge;
        break;
      case BinaryOp::Eq:
        lowered = Op::Eq;
        break;
      case BinaryOp::Ne:
        lowered = Op::Ne;
        break;
      case BinaryOp::And:
      case BinaryOp::Or:
        assert(false && "short-circuit ops lowered to jumps");
        break;
    }
    out_.code_.push_back({lowered, 0, 0, 0});
    --depth_;
  }

  void emit(const Expr& e) {
    if (const auto constant = fold(e)) {
      push_const(*constant);
      return;
    }
    switch (e.kind()) {
      case ExprKind::Number:
        push_const(static_cast<const NumberExpr&>(e).value());
        return;
      case ExprKind::Variable:
        emit_load(static_cast<const VariableExpr&>(e).name());
        return;
      case ExprKind::Unary: {
        const auto& unary = static_cast<const UnaryExpr&>(e);
        emit(unary.operand());
        out_.code_.push_back(
            {unary.op() == UnaryOp::Negate ? Op::Neg : Op::Not, 0, 0, 0});
        return;
      }
      case ExprKind::Binary:
        emit_binary(static_cast<const BinaryExpr&>(e));
        return;
      case ExprKind::Call:
        emit_call(static_cast<const CallExpr&>(e));
        return;
      case ExprKind::Conditional: {
        const auto& cond = static_cast<const ConditionalExpr&>(e);
        if (const auto chosen = fold(cond.cond())) {
          // Constant guard: only the taken branch is compiled; the dead
          // branch's potential errors vanish with it, exactly as the
          // tree walker never evaluates them.
          emit(truthy_const(*chosen) ? cond.then_branch()
                                     : cond.else_branch());
          return;
        }
        emit(cond.cond());
        const std::size_t to_else = emit_jump(Op::JumpIfFalse);
        const std::size_t entry_depth = depth_;
        emit(cond.then_branch());
        const std::size_t to_end = emit_jump(Op::Jump);
        patch_jump(to_else);
        depth_ = entry_depth;  // else arm starts at the branch depth
        emit(cond.else_branch());
        patch_jump(to_end);
        return;
      }
    }
  }

  void emit_binary(const BinaryExpr& binary) {
    const auto lhs_const = fold(binary.lhs());
    const auto rhs_const = fold(binary.rhs());
    switch (binary.op()) {
      case BinaryOp::And:
        // A constant falsy left side folded the whole expression; a
        // constant truthy one reduces to normalizing the right side.
        if (lhs_const) {
          emit(binary.rhs());
          out_.code_.push_back({Op::ToBool, 0, 0, 0});
          return;
        }
        {
          emit(binary.lhs());
          const std::size_t to_false = emit_jump(Op::JumpIfFalse);
          const std::size_t entry_depth = depth_;
          emit(binary.rhs());
          out_.code_.push_back({Op::ToBool, 0, 0, 0});
          const std::size_t to_end = emit_jump(Op::Jump);
          patch_jump(to_false);
          depth_ = entry_depth;
          push_const(0.0);
          patch_jump(to_end);
        }
        return;
      case BinaryOp::Or:
        if (lhs_const) {  // constant falsy left side: result is !!rhs
          emit(binary.rhs());
          out_.code_.push_back({Op::ToBool, 0, 0, 0});
          return;
        }
        {
          emit(binary.lhs());
          const std::size_t to_true = emit_jump(Op::JumpIfTrue);
          const std::size_t entry_depth = depth_;
          emit(binary.rhs());
          out_.code_.push_back({Op::ToBool, 0, 0, 0});
          const std::size_t to_end = emit_jump(Op::Jump);
          patch_jump(to_true);
          depth_ = entry_depth;
          push_const(1.0);
          patch_jump(to_end);
        }
        return;
      case BinaryOp::Mul:
        // x*1 == x and 1*x == x exactly (IEEE: sign, NaN and infinity
        // preserved), so the multiplication disappears.
        if (lhs_const && *lhs_const == 1.0 && !std::signbit(*lhs_const)) {
          emit(binary.rhs());
          return;
        }
        if (rhs_const && *rhs_const == 1.0 && !std::signbit(*rhs_const)) {
          emit(binary.lhs());
          return;
        }
        break;
      case BinaryOp::Div:
        if (rhs_const && *rhs_const == 1.0 && !std::signbit(*rhs_const)) {
          emit(binary.lhs());
          return;
        }
        break;
      case BinaryOp::Sub:
        // x-0 == x exactly for every x (including -0.0); x-(-0.0) is
        // not (it maps -0.0 to +0.0), hence the signbit check.
        if (rhs_const && *rhs_const == 0.0 && !std::signbit(*rhs_const)) {
          emit(binary.lhs());
          return;
        }
        break;
      case BinaryOp::Add:
        // Only x+(-0.0) == x is exact; x+0.0 maps -0.0 to +0.0 and is
        // deliberately left alone (see docs/expr.md).
        if (lhs_const && *lhs_const == 0.0 && std::signbit(*lhs_const)) {
          emit(binary.rhs());
          return;
        }
        if (rhs_const && *rhs_const == 0.0 && std::signbit(*rhs_const)) {
          emit(binary.lhs());
          return;
        }
        break;
      default:
        break;
    }
    emit(binary.lhs());
    emit(binary.rhs());
    emit_binary_op(binary.op());
  }

  void emit_call(const CallExpr& call) {
    // Arguments evaluate (and may throw) before any resolution error is
    // raised, matching the tree walker's order of operations.
    for (const auto& arg : call.args()) {
      emit(*arg);
    }
    const auto argc = call.args().size();
    if (const auto id = table_.function_id(call.callee())) {
      out_.code_.push_back({Op::CallUser,
                            static_cast<std::uint16_t>(argc),
                            *id, 0});
      depth_ -= argc;
      note_push();
      return;
    }
    const detail::Builtin* builtin = detail::find_builtin(call.callee());
    if (builtin == nullptr) {
      emit_throw("unknown function '" + call.callee() + "'");
      depth_ -= argc;  // the (unreachable) result replaces the args
      return;
    }
    if (static_cast<int>(argc) != builtin->arity) {
      emit_throw("function '" + call.callee() + "' expects " +
                 std::to_string(builtin->arity) + " argument(s), got " +
                 std::to_string(argc));
      depth_ -= argc;  // the (unreachable) result replaces the args
      return;
    }
    const auto index = static_cast<std::size_t>(
        builtin - detail::builtins().data());
    out_.code_.push_back(
        {static_cast<Op>(static_cast<int>(Op::Abs) + static_cast<int>(index)),
         0, 0, 0});
    if (builtin->arity == 2) {
      --depth_;
    }
  }

  const SymbolTable& table_;
  Compiled out_;
  mutable std::map<const Expr*, std::optional<double>> fold_cache_;
  std::size_t depth_ = 0;
  std::size_t max_depth_ = 0;
};

Compiled compile(const Expr& expr, const SymbolTable& table) {
  return Compiler(table).run(expr);
}

// ---------------------------------------------------------------------------
// Compiled: metadata
// ---------------------------------------------------------------------------

std::optional<double> Compiled::constant() const {
  if (code_.size() == 1 && code_[0].op == Op::PushConst) {
    return code_[0].value;
  }
  return std::nullopt;
}

bool Compiled::references_slot(Slot slot) const {
  return std::binary_search(slots_.begin(), slots_.end(), slot);
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void throw_eval(const std::string& message) {
  throw EvalError(message);
}

}  // namespace

double Compiled::eval(const EvalContext& ctx) const {
  // Typical programs need a handful of stack cells; the compiler knows
  // the exact worst case, so spilling to the heap is the rare path.
  constexpr std::size_t kInlineStack = 64;
  double inline_stack[kInlineStack];
  std::vector<double> heap_stack;
  double* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }
  std::size_t sp = 0;
  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  std::size_t ip = 0;
  // Instruction counting stays off the dispatch loop's memory traffic: a
  // register-resident tally, flushed once per eval (throwing paths
  // included) and only when a counter block is installed.
  std::uint64_t dispatched = 0;
  struct FlushCounters {
    obs::ExprCounters* counters;
    const std::uint64_t* dispatched;
    ~FlushCounters() {
      if (counters != nullptr) {
        counters->instructions += *dispatched;
        ++counters->evals;
      }
    }
  } flush{ctx.counters, &dispatched};
  // Budget stride: one pointer test per dispatch when disabled; when a
  // budget is installed, charge whole strides as they complete (the tail
  // is charged after the loop) so runaway expressions trip within ~1k
  // instructions while the hot path stays branch-cheap.
  constexpr std::uint64_t kBudgetStride = 1024;
  while (ip < n) {
    ++dispatched;
    if (ctx.budget != nullptr && (dispatched & (kBudgetStride - 1)) == 0) {
      ctx.budget->charge_vm_instructions(kBudgetStride, "expr-vm");
    }
    const Instr& in = code[ip];
    switch (in.op) {
      case Op::PushConst:
        stack[sp++] = in.value;
        break;
      case Op::LoadSlot: {
        const double* bound = ctx.frame[static_cast<std::size_t>(in.a)];
        if (bound == nullptr) {
          if (ctx.counters != nullptr) {
            ++ctx.counters->lazy_errors;
          }
          throw_eval(strings_[in.b]);
        }
        stack[sp++] = *bound;
        break;
      }
      case Op::LoadSlotOrPid: {
        const double* bound = ctx.frame[static_cast<std::size_t>(in.a)];
        stack[sp++] = bound != nullptr ? *bound : ctx.pid;
        break;
      }
      case Op::LoadSlotOrTid: {
        const double* bound = ctx.frame[static_cast<std::size_t>(in.a)];
        stack[sp++] = bound != nullptr ? *bound : ctx.tid;
        break;
      }
      case Op::LoadSlotOrUid: {
        const double* bound = ctx.frame[static_cast<std::size_t>(in.a)];
        stack[sp++] = bound != nullptr ? *bound : ctx.uid;
        break;
      }
      case Op::LoadArg: {
        const auto index = static_cast<std::size_t>(in.a);
        stack[sp++] = index < ctx.args.size() ? ctx.args[index] : 0.0;
        break;
      }
      case Op::LoadPid:
        stack[sp++] = ctx.pid;
        break;
      case Op::LoadTid:
        stack[sp++] = ctx.tid;
        break;
      case Op::LoadUid:
        stack[sp++] = ctx.uid;
        break;
      case Op::Neg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case Op::Not:
        stack[sp - 1] = stack[sp - 1] != 0.0 ? 0.0 : 1.0;
        break;
      case Op::Add:
        --sp;
        stack[sp - 1] = stack[sp - 1] + stack[sp];
        break;
      case Op::Sub:
        --sp;
        stack[sp - 1] = stack[sp - 1] - stack[sp];
        break;
      case Op::Mul:
        --sp;
        stack[sp - 1] = stack[sp - 1] * stack[sp];
        break;
      case Op::Div:
        --sp;
        stack[sp - 1] = stack[sp - 1] / stack[sp];
        break;
      case Op::Mod:
        --sp;
        stack[sp - 1] = std::fmod(stack[sp - 1], stack[sp]);
        break;
      case Op::Lt:
        --sp;
        stack[sp - 1] = stack[sp - 1] < stack[sp] ? 1.0 : 0.0;
        break;
      case Op::Le:
        --sp;
        stack[sp - 1] = stack[sp - 1] <= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::Gt:
        --sp;
        stack[sp - 1] = stack[sp - 1] > stack[sp] ? 1.0 : 0.0;
        break;
      case Op::Ge:
        --sp;
        stack[sp - 1] = stack[sp - 1] >= stack[sp] ? 1.0 : 0.0;
        break;
      case Op::Eq:
        --sp;
        stack[sp - 1] = stack[sp - 1] == stack[sp] ? 1.0 : 0.0;
        break;
      case Op::Ne:
        --sp;
        stack[sp - 1] = stack[sp - 1] != stack[sp] ? 1.0 : 0.0;
        break;
      case Op::ToBool:
        stack[sp - 1] = stack[sp - 1] != 0.0 ? 1.0 : 0.0;
        break;
      case Op::Jump:
        ip = static_cast<std::size_t>(in.a);
        continue;
      case Op::JumpIfFalse:
        if (!(stack[--sp] != 0.0)) {
          ip = static_cast<std::size_t>(in.a);
          continue;
        }
        break;
      case Op::JumpIfTrue:
        if (stack[--sp] != 0.0) {
          ip = static_cast<std::size_t>(in.a);
          continue;
        }
        break;
      case Op::CallUser: {
        if (ctx.functions == nullptr) {
          throw_eval("unknown function (no user-function table bound)");
        }
        sp -= in.b;
        stack[sp] = ctx.functions->call(
            in.a, std::span<const double>(stack + sp, in.b));
        ++sp;
        break;
      }
      case Op::Throw:
        if (ctx.counters != nullptr) {
          ++ctx.counters->lazy_errors;
        }
        throw_eval(strings_[static_cast<std::size_t>(in.a)]);
      case Op::Abs:
        stack[sp - 1] = std::fabs(stack[sp - 1]);
        break;
      case Op::Ceil:
        stack[sp - 1] = std::ceil(stack[sp - 1]);
        break;
      case Op::Cos:
        stack[sp - 1] = std::cos(stack[sp - 1]);
        break;
      case Op::Exp:
        stack[sp - 1] = std::exp(stack[sp - 1]);
        break;
      case Op::Floor:
        stack[sp - 1] = std::floor(stack[sp - 1]);
        break;
      case Op::Log:
        stack[sp - 1] = std::log(stack[sp - 1]);
        break;
      case Op::Log10:
        stack[sp - 1] = std::log10(stack[sp - 1]);
        break;
      case Op::Log2:
        stack[sp - 1] = std::log2(stack[sp - 1]);
        break;
      case Op::Max:
        --sp;
        stack[sp - 1] = std::fmax(stack[sp - 1], stack[sp]);
        break;
      case Op::Min:
        --sp;
        stack[sp - 1] = std::fmin(stack[sp - 1], stack[sp]);
        break;
      case Op::Pow:
        --sp;
        stack[sp - 1] = std::pow(stack[sp - 1], stack[sp]);
        break;
      case Op::Round:
        stack[sp - 1] = std::round(stack[sp - 1]);
        break;
      case Op::Sin:
        stack[sp - 1] = std::sin(stack[sp - 1]);
        break;
      case Op::Sqrt:
        stack[sp - 1] = std::sqrt(stack[sp - 1]);
        break;
      case Op::Tan:
        stack[sp - 1] = std::tan(stack[sp - 1]);
        break;
      case Op::Tanh:
        stack[sp - 1] = std::tanh(stack[sp - 1]);
        break;
    }
    ++ip;
  }
  if (ctx.budget != nullptr && (dispatched & (kBudgetStride - 1)) != 0) {
    ctx.budget->charge_vm_instructions(dispatched & (kBudgetStride - 1),
                                       "expr-vm");
  }
  return stack[sp - 1];
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

namespace {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::PushConst:
      return "push";
    case Op::LoadSlot:
      return "load";
    case Op::LoadSlotOrPid:
      return "load|pid";
    case Op::LoadSlotOrTid:
      return "load|tid";
    case Op::LoadSlotOrUid:
      return "load|uid";
    case Op::LoadArg:
      return "arg";
    case Op::LoadPid:
      return "pid";
    case Op::LoadTid:
      return "tid";
    case Op::LoadUid:
      return "uid";
    case Op::Neg:
      return "neg";
    case Op::Not:
      return "not";
    case Op::Add:
      return "add";
    case Op::Sub:
      return "sub";
    case Op::Mul:
      return "mul";
    case Op::Div:
      return "div";
    case Op::Mod:
      return "mod";
    case Op::Lt:
      return "lt";
    case Op::Le:
      return "le";
    case Op::Gt:
      return "gt";
    case Op::Ge:
      return "ge";
    case Op::Eq:
      return "eq";
    case Op::Ne:
      return "ne";
    case Op::ToBool:
      return "tobool";
    case Op::Jump:
      return "jmp";
    case Op::JumpIfFalse:
      return "jz";
    case Op::JumpIfTrue:
      return "jnz";
    case Op::CallUser:
      return "call";
    case Op::Throw:
      return "throw";
    case Op::Abs:
      return "abs";
    case Op::Ceil:
      return "ceil";
    case Op::Cos:
      return "cos";
    case Op::Exp:
      return "exp";
    case Op::Floor:
      return "floor";
    case Op::Log:
      return "log";
    case Op::Log10:
      return "log10";
    case Op::Log2:
      return "log2";
    case Op::Max:
      return "max";
    case Op::Min:
      return "min";
    case Op::Pow:
      return "pow";
    case Op::Round:
      return "round";
    case Op::Sin:
      return "sin";
    case Op::Sqrt:
      return "sqrt";
    case Op::Tan:
      return "tan";
    case Op::Tanh:
      return "tanh";
  }
  return "?";
}

}  // namespace

std::string Compiled::disassemble() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& in = code_[i];
    out << i << ": " << op_name(in.op);
    switch (in.op) {
      case Op::PushConst:
        out << ' ' << in.value;
        break;
      case Op::LoadSlot:
      case Op::LoadSlotOrPid:
      case Op::LoadSlotOrTid:
      case Op::LoadSlotOrUid:
      case Op::LoadArg:
      case Op::Jump:
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        out << ' ' << in.a;
        break;
      case Op::CallUser:
        out << ' ' << in.a << " argc=" << in.b;
        break;
      case Op::Throw:
        out << " \"" << strings_[static_cast<std::size_t>(in.a)] << '"';
        break;
      default:
        break;
    }
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// SlotFrame
// ---------------------------------------------------------------------------

SlotFrame::SlotFrame(const SymbolTable& table)
    : values_(table.slot_count(), 0.0), pointers_(table.slot_count()) {
  for (std::size_t i = 0; i < values_.size(); ++i) {
    pointers_[i] = &values_[i];
  }
}

}  // namespace prophet::expr
