#include "prophet/pipeline/scenario.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace prophet::pipeline {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw std::invalid_argument("bad grid spec '" + std::string(spec) +
                              "': " + why);
}

/// Hard cap on one axis's expanded value count.  Generous for real
/// sweeps (full grids multiply axes, so even 10^6 on one axis is
/// enormous) and small enough that a runaway range cannot exhaust
/// memory before the error fires.
constexpr std::size_t kMaxAxisValues = 1000000;

int to_count(std::string_view name, double value) {
  // All range checks in the double domain: llround / static_cast on an
  // out-of-range double is undefined behavior.
  const double rounded = std::floor(value + 0.5);
  if (!(rounded >= 1) || rounded > 2147483647.0) {
    throw std::invalid_argument("parameter '" + std::string(name) +
                                "' must be an integer in [1, 2^31)");
  }
  return static_cast<int>(rounded);
}

double parse_number(std::string_view spec, std::string_view token) {
  const std::string text(token);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad_spec(spec, "'" + text + "' is not a number");
  }
  return value;
}

/// Canonical field name behind a sweep parameter, so aliased axes
/// ("np=..." and "processes=...") are recognized as duplicates.
std::string_view canonical_parameter(std::string_view name) {
  if (name == "processes") {
    return "np";
  }
  if (name == "nodes") {
    return "nn";
  }
  if (name == "processors_per_node") {
    return "ppn";
  }
  if (name == "threads" || name == "threads_per_process") {
    return "nt";
  }
  return name;
}

/// Axes bound to integer count fields (process/node/thread counts) get
/// their values range-checked at parse time, so an overflowing spec
/// fails as one structured parse error instead of per-job failures.
bool is_count_parameter(std::string_view name) {
  const std::string_view canonical = canonical_parameter(name);
  return canonical == "np" || canonical == "nn" || canonical == "ppn" ||
         canonical == "nt";
}

}  // namespace

void ScenarioGrid::apply(machine::SystemParameters& params,
                         std::string_view name, double value) {
  if (name == "np" || name == "processes") {
    params.processes = to_count(name, value);
  } else if (name == "nn" || name == "nodes") {
    params.nodes = to_count(name, value);
  } else if (name == "ppn" || name == "processors_per_node") {
    params.processors_per_node = to_count(name, value);
  } else if (name == "nt" || name == "threads" ||
             name == "threads_per_process") {
    params.threads_per_process = to_count(name, value);
  } else if (name == "cpu_speed") {
    params.cpu_speed = value;
  } else if (name == "network_latency") {
    params.network_latency = value;
  } else if (name == "network_bandwidth") {
    params.network_bandwidth = value;
  } else if (name == "network_overhead") {
    params.network_overhead = value;
  } else if (name == "memory_latency") {
    params.memory_latency = value;
  } else if (name == "memory_bandwidth") {
    params.memory_bandwidth = value;
  } else if (name == "barrier_latency") {
    params.barrier_latency = value;
  } else {
    throw std::invalid_argument("unknown sweep parameter '" +
                                std::string(name) + "'");
  }
}

bool ScenarioGrid::is_parameter(std::string_view name) {
  machine::SystemParameters probe;
  try {
    apply(probe, name, 1.0);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

ScenarioGrid& ScenarioGrid::axis(std::string name,
                                 std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("axis '" + name + "' has no values");
  }
  if (!is_parameter(name)) {
    throw std::invalid_argument("unknown sweep parameter '" + name + "'");
  }
  for (const auto& existing : axes_) {
    if (canonical_parameter(existing.name) == canonical_parameter(name)) {
      throw std::invalid_argument("duplicate sweep axis '" + name +
                                  "' (already swept as '" + existing.name +
                                  "')");
    }
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

ScenarioGrid ScenarioGrid::parse(std::string_view spec,
                                 machine::SystemParameters base) {
  ScenarioGrid grid(base);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    // Axes are separated by whitespace or ';'.
    if (spec[pos] == ' ' || spec[pos] == '\t' || spec[pos] == ';') {
      ++pos;
      continue;
    }
    std::size_t end = pos;
    while (end < spec.size() && spec[end] != ' ' && spec[end] != '\t' &&
           spec[end] != ';') {
      ++end;
    }
    const std::string_view token = spec.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad_spec(spec, "expected name=values in '" + std::string(token) + "'");
    }
    const std::string name(token.substr(0, eq));
    const std::string_view values_text = token.substr(eq + 1);
    if (values_text.empty()) {
      bad_spec(spec, "axis '" + name + "' has no values");
    }

    std::vector<double> values;
    const std::size_t dots = values_text.find("..");
    if (dots != std::string_view::npos) {
      // Range form: lo..hi, optionally ":+step" (linear) or ":*factor"
      // (geometric).
      const double lo = parse_number(spec, values_text.substr(0, dots));
      std::string_view rest = values_text.substr(dots + 2);
      double step = 1;
      bool geometric = false;
      const std::size_t colon = rest.find(':');
      if (colon != std::string_view::npos) {
        std::string_view step_text = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
        if (step_text.empty()) {
          bad_spec(spec, "axis '" + name + "' has an empty step");
        }
        if (step_text.front() == '*') {
          geometric = true;
          step_text.remove_prefix(1);
        } else if (step_text.front() == '+') {
          step_text.remove_prefix(1);
        }
        step = parse_number(spec, step_text);
      }
      const double hi = parse_number(spec, rest);
      if (lo > hi) {
        bad_spec(spec, "axis '" + name + "' range is descending");
      }
      if ((geometric && (step <= 1 || lo <= 0)) || (!geometric && step <= 0)) {
        bad_spec(spec, "axis '" + name + "' has a non-advancing step");
      }
      for (double v = lo; v <= hi + 1e-9;) {
        values.push_back(v);
        // An overflowing range ("np=1..9e18:+1") must become a parse
        // error, not an absurd job count or an infinite loop: bound the
        // expansion, and catch the iteration stalling when the step
        // underflows the value's ulp (v + step == v at large magnitudes).
        if (values.size() > kMaxAxisValues) {
          bad_spec(spec, "axis '" + name + "' expands to more than " +
                             std::to_string(kMaxAxisValues) + " values");
        }
        const double next = geometric ? v * step : v + step;
        if (!(next > v) || !std::isfinite(next)) {
          bad_spec(spec, "axis '" + name +
                             "' step stops advancing (overflowing range?)");
        }
        v = next;
      }
    } else {
      // Comma-list form.
      std::size_t item = 0;
      while (item <= values_text.size()) {
        std::size_t comma = values_text.find(',', item);
        if (comma == std::string_view::npos) {
          comma = values_text.size();
        }
        if (comma == item) {
          bad_spec(spec, "axis '" + name + "' has an empty value");
        }
        values.push_back(
            parse_number(spec, values_text.substr(item, comma - item)));
        item = comma + 1;
      }
    }
    if (is_count_parameter(name)) {
      for (const double v : values) {
        const double rounded = std::floor(v + 0.5);
        if (!(rounded >= 1) || rounded > 2147483647.0) {
          bad_spec(spec, "axis '" + name + "' value " + std::to_string(v) +
                             " overflows the parameter (must be an integer "
                             "in [1, 2^31))");
        }
      }
    }
    grid.axis(name, std::move(values));
  }
  return grid;
}

std::size_t ScenarioGrid::size() const {
  std::size_t count = 1;
  for (const auto& axis : axes_) {
    count *= axis.values.size();
  }
  return count;
}

std::vector<machine::SystemParameters> ScenarioGrid::expand() const {
  std::vector<machine::SystemParameters> scenarios;
  scenarios.reserve(size());
  // Odometer over the axes: the last axis turns fastest.
  std::vector<std::size_t> index(axes_.size(), 0);
  for (;;) {
    machine::SystemParameters params = base_;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      apply(params, axes_[a].name, axes_[a].values[index[a]]);
    }
    scenarios.push_back(params);
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++index[a] < axes_[a].values.size()) {
        break;
      }
      index[a] = 0;
      if (a == 0) {
        return scenarios;
      }
    }
    if (axes_.empty()) {
      return scenarios;
    }
  }
}

}  // namespace prophet::pipeline
