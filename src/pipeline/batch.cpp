#include "prophet/pipeline/batch.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/check/checker.hpp"
#include "prophet/codegen/transformer.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/xmi/xmi.hpp"

namespace prophet::pipeline {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Simulated lanes get pid `base + rank` per model; 1000 keeps models'
// rank groups apart and clear of the host lane (pid 0) for any
// realistic process count.
constexpr int kSimPidStride = 1000;

int sim_pid_base(int model_index) {
  return kSimPidStride * (model_index + 1);
}

/// Folds a prepared model's lowering statistics under "lower.".
void fold_lowering(obs::Registry* metrics, const lower::LoweringStats& stats) {
  metrics->counter("lower.expr_programs").add(stats.expr_programs);
  metrics->counter("lower.nodes").add(stats.nodes);
  metrics->counter("lower.slots").add(stats.slots);
  metrics->counter("lower.guards").add(stats.guards);
  metrics->counter("lower.functions").add(stats.functions);
  metrics->counter("lower.variables").add(stats.variables);
  metrics->counter("lower.fragment_assignments")
      .add(stats.fragment_assignments);
  metrics->counter("lower.bytecode_bytes").add(stats.bytecode_bytes);
  metrics->timer("lower.expr_compile_seconds")
      .add_seconds(stats.expr_compile_seconds);
}

/// Folds a codegen handle's prepare cost (emit + compile + dlopen) and
/// compile-cache hit under "codegen.".  No-op for other backends.
void fold_codegen(obs::Registry* metrics,
                  const estimator::PreparedModel* prepared) {
  const auto* handle = dynamic_cast<const cgen::CodegenPrepared*>(prepared);
  if (handle == nullptr) {
    return;
  }
  metrics->timer("codegen.prepare_seconds")
      .add_seconds(handle->prepare_seconds());
  if (handle->cache_hit()) {
    metrics->counter("codegen.cache_hits").add(1);
  }
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, int job_id) {
  // SplitMix64: uncorrelated per-job streams from one base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    static_cast<std::uint64_t>(job_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- BatchReport -------------------------------------------------------------

BatchStats BatchReport::stats() const {
  BatchStats stats;
  stats.total = results.size();
  for (const auto& result : results) {
    stats.total_job_seconds += result.wall_seconds;
    if (!result.ok) {
      ++stats.failed;
      if (result.tripped_limit == "wall_clock") {
        ++stats.timed_out;
      } else if (result.tripped_limit == "cancelled") {
        ++stats.cancelled;
      }
      continue;
    }
    if (stats.ok == 0) {
      stats.min_predicted = result.predicted_time;
      stats.max_predicted = result.predicted_time;
    } else {
      stats.min_predicted = std::min(stats.min_predicted,
                                     result.predicted_time);
      stats.max_predicted = std::max(stats.max_predicted,
                                     result.predicted_time);
    }
    stats.mean_predicted += result.predicted_time;
    stats.total_events += result.events;
    if (estimator::backends_of(result.backend).cross_validates()) {
      ++stats.compared;
      stats.max_rel_error = std::max(stats.max_rel_error,
                                     result.relative_error);
      stats.mean_rel_error += result.relative_error;
    }
    ++stats.ok;
  }
  if (stats.ok > 0) {
    stats.mean_predicted /= static_cast<double>(stats.ok);
  }
  if (stats.compared > 0) {
    stats.mean_rel_error /= static_cast<double>(stats.compared);
  }
  return stats;
}

double BatchReport::jobs_per_second() const {
  if (wall_seconds <= 0) {
    return 0;
  }
  return static_cast<double>(results.size()) / wall_seconds;
}

obs::Registry BatchReport::derived_metrics() const {
  obs::Registry reg;
  const BatchStats stats = this->stats();
  reg.counter("batch.jobs").add(stats.total);
  reg.counter("batch.jobs_ok").add(stats.ok);
  reg.counter("batch.jobs_failed").add(stats.failed);
  reg.counter("batch.jobs_timed_out").add(stats.timed_out);
  reg.counter("batch.jobs_cancelled").add(stats.cancelled);
  reg.counter("batch.compared").add(stats.compared);
  reg.counter("batch.events").add(stats.total_events);
  reg.counter("batch.models_prepared")
      .add(static_cast<std::uint64_t>(std::max(models_prepared, 0)));
  reg.gauge("batch.threads").set(threads_used);
  reg.gauge("batch.jobs_per_second").set(jobs_per_second());
  reg.gauge("batch.predicted_min_s").set(stats.min_predicted);
  reg.gauge("batch.predicted_mean_s").set(stats.mean_predicted);
  reg.gauge("batch.predicted_max_s").set(stats.max_predicted);
  reg.gauge("batch.rel_error_mean").set(stats.mean_rel_error);
  reg.gauge("batch.rel_error_max").set(stats.max_rel_error);
  reg.timer("batch.wall_seconds").add_seconds(wall_seconds);
  reg.timer("batch.prepare_seconds").add_seconds(prepare_seconds);
  reg.timer("batch.job_seconds").add_seconds(stats.total_job_seconds);
  double parse = 0;
  double check = 0;
  double transform = 0;
  double estimate = 0;
  for (const auto& result : results) {
    parse += result.parse_seconds;
    check += result.check_seconds;
    transform += result.transform_seconds;
    estimate += result.estimate_seconds;
  }
  reg.timer("batch.parse_seconds").add_seconds(parse);
  reg.timer("batch.check_seconds").add_seconds(check);
  reg.timer("batch.transform_seconds").add_seconds(transform);
  reg.timer("batch.estimate_seconds").add_seconds(estimate);
  return reg;
}

std::string BatchReport::summary() const {
  // The aggregate lines read from the metric registry — the same cells
  // `--metrics` exports — so the printed counts and the JSON document
  // cannot drift apart.  Hand-built reports (tests) that never ran run()
  // get the registry re-derived on the fly.
  obs::Registry local;
  const obs::Registry* m = &metrics;
  if (metrics.empty()) {
    local = derived_metrics();
    m = &local;
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "scenario sweep: " << m->counter_value("batch.jobs") << " job(s), "
      << static_cast<int>(m->gauge_value("batch.threads")) << " thread(s), "
      << m->timer_seconds("batch.wall_seconds") << " s wall ("
      << m->gauge_value("batch.jobs_per_second") << " jobs/s)\n";
  // prepare_seconds > 0 identifies a cached run even when every model
  // failed to compile (models_prepared == 0).
  if (m->counter_value("batch.models_prepared") > 0 ||
      m->timer_seconds("batch.prepare_seconds") > 0) {
    out << "compiled-model cache: prepared "
        << m->counter_value("batch.models_prepared") << " model(s) in "
        << m->timer_seconds("batch.prepare_seconds") << " s\n";
  }
  for (const auto& result : results) {
    out << "  [" << result.job_id << "] " << result.model_name << " np="
        << result.params.processes << " nn=" << result.params.nodes
        << " ppn=" << result.params.processors_per_node << " nt="
        << result.params.threads_per_process;
    if (result.ok) {
      out << " -> " << result.predicted_time << " s";
      const estimator::BackendSet set =
          estimator::backends_of(result.backend);
      if (set.cross_validates()) {
        // Candidates (every selected non-reference engine) then the
        // worst deviation, e.g. "(analytic 1.5 s, rel err 0.02)".
        const estimator::BackendKind reference = set.reference();
        out << " (";
        if (set.analytic && reference != estimator::BackendKind::Analytic) {
          out << "analytic " << result.analytic_predicted << " s, ";
        }
        if (set.codegen && reference != estimator::BackendKind::Codegen) {
          out << "codegen " << result.codegen_predicted << " s, ";
        }
        out << "rel err " << result.relative_error << ")";
      } else if (result.backend == estimator::BackendKind::Analytic) {
        out << " (analytic)";
      } else if (result.backend == estimator::BackendKind::Codegen) {
        out << " (codegen, " << result.events << " events)";
      } else {
        out << " (" << result.events << " events)";
      }
      if (result.check_warnings > 0) {
        out << " [" << result.check_warnings << " warning(s)]";
      }
    } else {
      out << " -> FAILED: " << result.error;
    }
    out << '\n';
  }
  out << "ok " << m->counter_value("batch.jobs_ok") << " / failed "
      << m->counter_value("batch.jobs_failed");
  if (m->counter_value("batch.jobs_timed_out") > 0) {
    out << " (" << m->counter_value("batch.jobs_timed_out") << " timed out)";
  }
  if (m->counter_value("batch.jobs_cancelled") > 0) {
    out << " (" << m->counter_value("batch.jobs_cancelled") << " cancelled)";
  }
  if (m->counter_value("batch.jobs_ok") > 0) {
    out << "; predicted min " << m->gauge_value("batch.predicted_min_s")
        << " s, mean " << m->gauge_value("batch.predicted_mean_s")
        << " s, max " << m->gauge_value("batch.predicted_max_s") << " s; "
        << m->counter_value("batch.events") << " events";
  }
  if (m->counter_value("batch.compared") > 0) {
    out << "; cross-validation rel err mean "
        << m->gauge_value("batch.rel_error_mean") << ", max "
        << m->gauge_value("batch.rel_error_max");
  }
  out << '\n';
  return out.str();
}

std::string BatchReport::to_csv() const {
  std::ostringstream out;
  out.precision(12);
  // Columns 1-17 are deterministic (CI diffs them across thread counts
  // and cache modes); wall_s and the per-stage timings are host times,
  // error is free text and stays last.
  out << "job,model,np,nn,ppn,nt,cpu_speed,seed,backend,ok,predicted_s,"
         "analytic_s,codegen_s,rel_error,events,warnings,generated_bytes,"
         "wall_s,parse_s,check_s,transform_s,estimate_s,tripped_limit,"
         "error\n";
  // Free-text fields (the model name may be a file path; error messages
  // quote model content) are escaped per RFC 4180: a field containing a
  // comma, quote or line break is wrapped in quotes with embedded quotes
  // doubled.  Clean fields pass through byte-identical, so determinism
  // diffs over the fixed-format columns are unaffected.
  const auto field = [](const std::string& text) {
    if (text.find_first_of(",\"\r\n") == std::string::npos) {
      return text;
    }
    std::string quoted;
    quoted.reserve(text.size() + 2);
    quoted += '"';
    for (const char c : text) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  for (const auto& result : results) {
    const std::string error = field(result.error);
    out << result.job_id << ',' << field(result.model_name) << ','
        << result.params.processes << ',' << result.params.nodes << ','
        << result.params.processors_per_node << ','
        << result.params.threads_per_process << ','
        << result.params.cpu_speed << ',' << result.seed << ','
        << estimator::to_string(result.backend) << ','
        << (result.ok ? 1 : 0) << ',' << result.predicted_time << ','
        << result.analytic_predicted << ',' << result.codegen_predicted << ','
        << result.relative_error << ','
        << result.events << ',' << result.check_warnings << ','
        << result.generated_bytes << ',' << result.wall_seconds << ','
        << result.parse_seconds << ',' << result.check_seconds << ','
        << result.transform_seconds << ',' << result.estimate_seconds << ','
        << result.tripped_limit << ',' << error << '\n';
  }
  return out.str();
}

// --- BatchRunner -------------------------------------------------------------

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

int BatchRunner::add_model(std::string name, const uml::Model& model) {
  return add_model_xml(std::move(name), xmi::to_xml(model));
}

int BatchRunner::add_model_xml(std::string name, std::string xmi_text) {
  models_.push_back(ModelEntry{std::move(name), std::move(xmi_text)});
  return static_cast<int>(models_.size()) - 1;
}

int BatchRunner::add_model_reference(const std::string& reference) {
  return add_model(reference, models::Registry::builtin().make(reference));
}

int BatchRunner::add_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read model file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return add_model_xml(path, text.str());
}

void BatchRunner::add_scenario(int model_index,
                               machine::SystemParameters params) {
  if (model_index < 0 ||
      model_index >= static_cast<int>(models_.size())) {
    throw std::out_of_range("model index out of range");
  }
  BatchJob job;
  job.id = static_cast<int>(jobs_.size());
  job.model_index = model_index;
  job.model_name = models_[static_cast<std::size_t>(model_index)].name;
  job.params = params;
  job.seed = derive_seed(options_.base_seed, job.id);
  jobs_.push_back(std::move(job));
}

void BatchRunner::add_sweep(int model_index, const ScenarioGrid& grid) {
  for (const auto& params : grid.expand()) {
    add_scenario(model_index, params);
  }
}

void BatchRunner::add_sweep_all(const ScenarioGrid& grid) {
  const auto scenarios = grid.expand();
  for (int m = 0; m < static_cast<int>(models_.size()); ++m) {
    for (const auto& params : scenarios) {
      add_scenario(m, params);
    }
  }
}

// One compiled model of a cached run.  Built once during the prepare
// phase, then shared read-only by every worker: the parsed model is
// immutable and the PreparedModel handles guarantee concurrent
// estimate() safety, so no locking is needed on the hot path.
struct BatchRunner::CompiledEntry {
  bool ok = false;
  std::string error;  // stage-prefixed, e.g. "check: 2 error(s): ..."
  std::size_t check_warnings = 0;
  std::size_t generated_bytes = 0;
  // The prepared handles borrow `model`; member order keeps the model
  // alive past their destruction.
  std::unique_ptr<uml::Model> model;
  std::unique_ptr<estimator::PreparedModel> sim;
  std::unique_ptr<estimator::PreparedModel> analytic;
  std::unique_ptr<estimator::PreparedModel> codegen;
};

std::vector<BatchRunner::CompiledEntry> BatchRunner::compile_models(
    int threads, int* compiled, obs::TraceLog* trace_log) const {
  std::vector<CompiledEntry> entries(models_.size());
  std::vector<char> referenced(models_.size(), 0);
  for (const auto& job : jobs_) {
    referenced[static_cast<std::size_t>(job.model_index)] = 1;
  }
  std::vector<std::size_t> to_compile;
  for (std::size_t m = 0; m < models_.size(); ++m) {
    if (referenced[m] != 0) {
      to_compile.push_back(m);
    }
    // Unreferenced entries stay empty; no job ever reads them.
  }

  threads = std::max(
      1, std::min<int>(threads, static_cast<int>(to_compile.size())));

  // TraceLog is not thread-safe: each compile worker records into its own
  // log (sharing the parent's epoch) and the logs merge after the join.
  std::vector<obs::TraceLog> worker_logs;
  if (trace_log != nullptr) {
    worker_logs.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      worker_logs.emplace_back(trace_log->epoch());
    }
  }

  // Models compile independently (each entry is written by exactly one
  // worker), so the prepare phase parallelizes like the jobs do — a
  // many-model sweep is not serialized behind one compiling thread.
  std::atomic<std::size_t> next{0};
  const auto compile_worker = [this, &entries, &to_compile, &next,
                               &worker_logs](int worker_id) {
    obs::TraceLog* log =
        worker_logs.empty()
            ? nullptr
            : &worker_logs[static_cast<std::size_t>(worker_id)];
    for (;;) {
      const std::size_t ticket = next.fetch_add(1);
      if (ticket >= to_compile.size()) {
        return;
      }
      const std::size_t m = to_compile[ticket];
      const obs::TraceLog::HostSpan span(log, 0, worker_id,
                                         "compile " + models_[m].name,
                                         "host.compile");
      compile_one(m, &entries[m]);
    }
  };
  if (threads == 1) {
    compile_worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(compile_worker, t);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }
  if (trace_log != nullptr) {
    for (auto& log : worker_logs) {
      trace_log->merge(std::move(log));
    }
  }
  *compiled = static_cast<int>(
      std::count_if(to_compile.begin(), to_compile.end(),
                    [&entries](std::size_t m) { return entries[m].ok; }));
  return entries;
}

std::string BatchRunner::run_model_stages(
    std::size_t model_index, uml::Model* model, std::size_t* warnings,
    std::size_t* generated_bytes, double* parse_seconds,
    double* check_seconds, double* transform_seconds) const {
  const auto record = [](double* slot,
                         std::chrono::steady_clock::time_point since) {
    if (slot != nullptr) {
      *slot = seconds_since(since);
    }
  };

  // Every stage records its elapsed time whether it succeeds or throws
  // (same convention as the estimate stage), so the per-stage columns
  // account for a failing job's wall time too.

  // Stage 1: XMI parse.
  auto stage_start = std::chrono::steady_clock::now();
  try {
    if (options_.fault_plan != nullptr) {
      options_.fault_plan->visit("parse");
    }
    *model = xmi::from_xml(models_[model_index].xmi);
  } catch (const std::exception& error) {
    record(parse_seconds, stage_start);
    return std::string("parse: ") + error.what();
  }
  record(parse_seconds, stage_start);

  // Stage 2: model check.
  if (options_.run_checker) {
    stage_start = std::chrono::steady_clock::now();
    try {
      if (options_.fault_plan != nullptr) {
        options_.fault_plan->visit("check");
      }
      const check::ModelChecker checker;
      const check::Diagnostics diagnostics = checker.check(*model);
      *warnings = diagnostics.warning_count();
      if (!diagnostics.ok()) {
        record(check_seconds, stage_start);
        return "check: " + std::to_string(diagnostics.error_count()) +
               " error(s): " + diagnostics.to_string();
      }
    } catch (const std::exception& error) {
      record(check_seconds, stage_start);
      return std::string("check: ") + error.what();
    }
    record(check_seconds, stage_start);
  }

  // Stage 3: UML -> C++ transformation (the paper's PMP element).
  if (options_.run_codegen) {
    stage_start = std::chrono::steady_clock::now();
    try {
      if (options_.fault_plan != nullptr) {
        options_.fault_plan->visit("transform");
      }
      const codegen::Transformer transformer;
      *generated_bytes = transformer.transform(*model).size();
    } catch (const std::exception& error) {
      record(transform_seconds, stage_start);
      return std::string("transform: ") + error.what();
    }
    record(transform_seconds, stage_start);
  }
  return "";
}

namespace {

/// Stable stage prefix of each engine, used by prepare and estimate
/// failures alike so a model defect reports the same stage wherever it
/// surfaces.
const char* engine_stage(estimator::BackendKind kind) {
  switch (kind) {
    case estimator::BackendKind::Simulation:
      return "simulate: ";
    case estimator::BackendKind::Codegen:
      return "cgen: ";
    default:
      return "analytic: ";
  }
}

/// Backend::prepare for the selected engine(s); any backend pointer may
/// be null.  The model is lowered exactly once (lower::lower) and the
/// shared lower::ModelProgram fans out to every selected backend —
/// cross-validating kinds pay one lowering, not one per engine.
/// Returns a stage-prefixed error ("" on success) with the same stage
/// names estimate failures use, so a model defect reports the same
/// stage whether it surfaces at prepare or at evaluate, cached or
/// isolated.
std::string prepare_backends(
    const uml::Model& model, const estimator::Backend* sim_backend,
    const estimator::Backend* analytic_backend,
    const estimator::Backend* codegen_backend,
    std::unique_ptr<estimator::PreparedModel>* sim,
    std::unique_ptr<estimator::PreparedModel>* analytic,
    std::unique_ptr<estimator::PreparedModel>* codegen,
    guard::FaultPlan* fault_plan) {
  struct Engine {
    const estimator::Backend* backend;
    std::unique_ptr<estimator::PreparedModel>* prepared;
    estimator::BackendKind kind;
  };
  // Reference-priority order (sim, codegen, analytic): lowering failures
  // report under the first selected engine's stage name.
  const Engine engines[] = {
      {sim_backend, sim, estimator::BackendKind::Simulation},
      {codegen_backend, codegen, estimator::BackendKind::Codegen},
      {analytic_backend, analytic, estimator::BackendKind::Analytic},
  };
  const char* first_stage = nullptr;
  for (const Engine& engine : engines) {
    if (engine.backend != nullptr) {
      first_stage = engine_stage(engine.kind);
      break;
    }
  }
  if (first_stage == nullptr) {
    return "";
  }
  lower::ModelProgramPtr program;
  try {
    if (fault_plan != nullptr) {
      fault_plan->visit("lower");
    }
    program = lower::lower(model);
  } catch (const std::exception& error) {
    return std::string(first_stage) + error.what();
  }
  // One "prepare" fault visit per compile chain, however many engines
  // ride it.
  bool visited_prepare = false;
  for (const Engine& engine : engines) {
    if (engine.backend == nullptr) {
      continue;
    }
    try {
      if (fault_plan != nullptr && !visited_prepare) {
        visited_prepare = true;
        fault_plan->visit("prepare");
      }
      *engine.prepared = engine.backend->prepare(program);
    } catch (const std::exception& error) {
      return std::string(engine_stage(engine.kind)) + error.what();
    }
  }
  return "";
}

/// CSV/metrics name of the bound a guard error tripped.
std::string limit_name(const guard::GuardError& error) {
  if (dynamic_cast<const guard::Cancelled*>(&error) != nullptr) {
    return "cancelled";
  }
  return std::string(guard::to_string(error.limit()));
}

/// Stage 4, shared by both modes: run the selected backend(s) and fill
/// the prediction fields.  The reference engine (BackendSet::reference)
/// runs first and fills `predicted_time`; every other selected engine is
/// a candidate filling its own field plus the worst-case
/// `relative_error`.  Returns a stage-prefixed error ("" on success).
/// `metrics` (nullable) receives the engines' activity counters;
/// `sim_trace` (nullable) receives the simulated timeline.  Neither
/// feeds back into the prediction.
std::string estimate_stage(const estimator::PreparedModel* sim,
                           const estimator::PreparedModel* analytic,
                           const estimator::PreparedModel* codegen,
                           estimator::BackendKind kind,
                           const machine::SystemParameters& params,
                           obs::Registry* metrics, trace::Trace* sim_trace,
                           guard::Budget* budget, guard::FaultPlan* fault_plan,
                           ScenarioResult* result) {
  const estimator::BackendKind reference =
      estimator::backends_of(kind).reference();
  estimator::EstimationOptions estimation;
  estimation.collect_trace = false;
  estimation.collect_machine_report = false;
  estimation.metrics = metrics;
  estimation.budget = budget;

  struct Engine {
    const estimator::PreparedModel* prepared;
    estimator::BackendKind kind;
    double* candidate;  // engine-specific prediction field (null for sim)
  };
  // Reference first: candidates compare against its prediction.
  Engine engines[3];
  std::size_t count = 0;
  const auto add = [&](const estimator::PreparedModel* prepared,
                       estimator::BackendKind engine_kind,
                       double* candidate) {
    if (prepared == nullptr) {
      return;
    }
    engines[count++] = Engine{prepared, engine_kind, candidate};
    if (engine_kind == reference && count > 1) {
      std::swap(engines[0], engines[count - 1]);
    }
  };
  add(sim, estimator::BackendKind::Simulation, nullptr);
  add(analytic, estimator::BackendKind::Analytic,
      &result->analytic_predicted);
  add(codegen, estimator::BackendKind::Codegen, &result->codegen_predicted);
  if (count == 0) {
    return "";
  }

  if (fault_plan != nullptr) {
    try {
      fault_plan->visit("estimate");
    } catch (const std::exception& error) {
      return std::string(engine_stage(engines[0].kind)) + error.what();
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Engine& engine = engines[i];
    const char* stage = engine_stage(engine.kind);
    try {
      estimator::EstimationOptions options = estimation;
      options.collect_trace = engine.kind ==
                                  estimator::BackendKind::Simulation &&
                              sim_trace != nullptr;
      estimator::PredictionReport report =
          engine.prepared->estimate(params, options);
      if (engine.candidate != nullptr) {
        *engine.candidate = report.predicted_time;
      }
      if (engine.kind == reference) {
        result->predicted_time = report.predicted_time;
        result->processes = report.processes;
        if (engine.kind != estimator::BackendKind::Analytic) {
          result->events = report.events;
        }
        if (options.collect_trace) {
          *sim_trace = std::move(report.trace);
        }
      } else if (result->predicted_time > 0) {
        result->relative_error = std::max(
            result->relative_error,
            std::abs(report.predicted_time - result->predicted_time) /
                result->predicted_time);
      } else if (report.predicted_time > 0) {
        result->relative_error = std::numeric_limits<double>::infinity();
      }
    } catch (const guard::GuardError& error) {
      result->tripped_limit = limit_name(error);
      return std::string(stage) + error.what();
    } catch (const std::exception& error) {
      return std::string(stage) + error.what();
    }
  }
  return "";
}

/// Stage 4 for a lane chunk: run the selected backend(s) once over the
/// whole parameter span via PreparedModel::estimate_batch and fill each
/// lane's prediction fields — the same reference/candidate logic as
/// estimate_stage, applied per lane.  Any failure aborts the whole
/// chunk (stage-prefixed error); the caller re-runs the lanes one by
/// one, which attributes the error (and any tripped bound) to exactly
/// the right job.
std::string estimate_stage_batch(
    const estimator::PreparedModel* sim,
    const estimator::PreparedModel* analytic,
    const estimator::PreparedModel* codegen, estimator::BackendKind kind,
    std::span<const machine::SystemParameters> params, obs::Registry* metrics,
    guard::Budget* budget, ScenarioResult* results) {
  const estimator::BackendKind reference =
      estimator::backends_of(kind).reference();
  estimator::EstimationOptions estimation;
  estimation.collect_trace = false;
  estimation.collect_machine_report = false;
  estimation.metrics = metrics;
  estimation.budget = budget;

  struct Engine {
    const estimator::PreparedModel* prepared;
    estimator::BackendKind kind;
    double ScenarioResult::*candidate;  // per-engine field (null for sim)
  };
  // Reference first: candidates compare against its prediction.
  Engine engines[3];
  std::size_t count = 0;
  const auto add = [&](const estimator::PreparedModel* prepared,
                       estimator::BackendKind engine_kind,
                       double ScenarioResult::*candidate) {
    if (prepared == nullptr) {
      return;
    }
    engines[count++] = Engine{prepared, engine_kind, candidate};
    if (engine_kind == reference && count > 1) {
      std::swap(engines[0], engines[count - 1]);
    }
  };
  add(sim, estimator::BackendKind::Simulation, nullptr);
  add(analytic, estimator::BackendKind::Analytic,
      &ScenarioResult::analytic_predicted);
  add(codegen, estimator::BackendKind::Codegen,
      &ScenarioResult::codegen_predicted);
  if (count == 0) {
    return "";
  }

  for (std::size_t i = 0; i < count; ++i) {
    const Engine& engine = engines[i];
    const char* stage = engine_stage(engine.kind);
    try {
      const std::vector<estimator::PredictionReport> reports =
          engine.prepared->estimate_batch(params, estimation);
      if (reports.size() != params.size()) {
        return std::string(stage) +
               "estimate_batch returned a wrong lane count";
      }
      for (std::size_t lane = 0; lane < reports.size(); ++lane) {
        ScenarioResult& result = results[lane];
        const estimator::PredictionReport& report = reports[lane];
        if (engine.candidate != nullptr) {
          result.*engine.candidate = report.predicted_time;
        }
        if (engine.kind == reference) {
          result.predicted_time = report.predicted_time;
          result.processes = report.processes;
          if (engine.kind != estimator::BackendKind::Analytic) {
            result.events = report.events;
          }
        } else if (result.predicted_time > 0) {
          result.relative_error = std::max(
              result.relative_error,
              std::abs(report.predicted_time - result.predicted_time) /
                  result.predicted_time);
        } else if (report.predicted_time > 0) {
          result.relative_error = std::numeric_limits<double>::infinity();
        }
      }
    } catch (const std::exception& error) {
      return std::string(stage) + error.what();
    }
  }
  return "";
}

/// The per-job limit set: options.limits with `--job-timeout` folded
/// into the wall clock (the tighter bound wins).
guard::Limits job_limits(const BatchOptions& options) {
  guard::Limits limits = options.limits;
  if (options.job_timeout_seconds > 0 &&
      (limits.wall_seconds <= 0 ||
       options.job_timeout_seconds < limits.wall_seconds)) {
    limits.wall_seconds = options.job_timeout_seconds;
  }
  return limits;
}

ScenarioResult result_for(const BatchJob& job) {
  ScenarioResult result;
  result.job_id = job.id;
  result.model_index = job.model_index;
  result.model_name = job.model_name;
  result.params = job.params;
  result.seed = job.seed;
  return result;
}

}  // namespace

void BatchRunner::compile_one(std::size_t m, CompiledEntry* out) const {
  CompiledEntry& entry = *out;
  // The same stage chain (and error text) as the isolated path, shared
  // via run_model_stages/prepare_backends: a model failing at stage X
  // reports the same stage-prefixed error in both modes.
  entry.model = std::make_unique<uml::Model>("empty");
  entry.error =
      run_model_stages(m, entry.model.get(), &entry.check_warnings,
                       &entry.generated_bytes, nullptr, nullptr, nullptr);
  if (!entry.error.empty()) {
    return;
  }
  const estimator::BackendSet set = estimator::backends_of(options_.backend);
  const analytic::SimulationBackend sim_backend;
  const analytic::AnalyticBackend analytic_backend;
  cgen::CodegenOptions cgen_options;
  cgen_options.toolchain.fault_plan = options_.fault_plan;
  const cgen::CodegenBackend codegen_backend(cgen_options);
  entry.error = prepare_backends(
      *entry.model, set.sim ? &sim_backend : nullptr,
      set.analytic ? &analytic_backend : nullptr,
      set.codegen ? &codegen_backend : nullptr, &entry.sim, &entry.analytic,
      &entry.codegen, options_.fault_plan);
  if (!entry.error.empty()) {
    return;
  }
  entry.ok = true;
}

ScenarioResult BatchRunner::run_job(
    const BatchJob& job, const estimator::Backend* sim_backend,
    const estimator::Backend* analytic_backend,
    const estimator::Backend* codegen_backend, obs::Registry* metrics,
    trace::Trace* sim_trace, const guard::Budget* sweep) const {
  ScenarioResult result = result_for(job);
  result.backend = options_.backend;

  // The job's budget: its deadline starts here, so `--job-timeout`
  // covers the whole per-job chain; chaining to the sweep budget makes a
  // sweep deadline / SIGINT cancel the job at its next check site.  The
  // budget is only passed down when something actually bounds the run,
  // so unguarded sweeps keep the engines' zero-check fast path.
  const guard::Limits limits = job_limits(options_);
  guard::Budget budget(limits, sweep);
  const bool guarded = limits.any() || sweep != nullptr;
  bool armed = false;
  if (options_.fault_plan != nullptr) {
    if (const auto event = options_.fault_plan->cancel_at_event()) {
      budget.cancel_at_sim_event(*event);
      armed = true;
    }
  }
  guard::Budget* job_budget = guarded || armed ? &budget : nullptr;

  const auto start = std::chrono::steady_clock::now();
  const auto fail = [&](const std::string& error) -> ScenarioResult {
    result.ok = false;
    result.error = error;
    result.wall_seconds = seconds_since(start);
    return result;
  };

  // Stages 1-3: parse, check, transform — every job its own model copy.
  uml::Model model("empty");
  std::string error = run_model_stages(
      static_cast<std::size_t>(job.model_index), &model,
      &result.check_warnings, &result.generated_bytes, &result.parse_seconds,
      &result.check_seconds, &result.transform_seconds);
  if (!error.empty()) {
    return fail(error);
  }

  // Stage 4: prepare + estimate with the selected backend(s).  Isolation
  // keeps prepare inside the job (the per-job chain is the point of this
  // mode), but the stateless Backend objects themselves come from the
  // worker, constructed once per thread instead of once per job.  Failed
  // estimates still record their stage time (matching the cached path,
  // which times the estimate whether or not it succeeds).
  const auto stage_start = std::chrono::steady_clock::now();
  std::unique_ptr<estimator::PreparedModel> sim;
  std::unique_ptr<estimator::PreparedModel> analytic;
  std::unique_ptr<estimator::PreparedModel> codegen;
  error = prepare_backends(model, sim_backend, analytic_backend,
                           codegen_backend, &sim, &analytic, &codegen,
                           options_.fault_plan);
  if (error.empty()) {
    if (metrics != nullptr) {
      // Isolated mode lowers per job, so the lowering work is counted
      // per job too (cached mode counts it once per model instead).
      const auto& prepared =
          sim != nullptr ? sim : analytic != nullptr ? analytic : codegen;
      fold_lowering(metrics, prepared->lowering()->stats());
      fold_codegen(metrics, codegen.get());
    }
    error = estimate_stage(sim.get(), analytic.get(), codegen.get(),
                           options_.backend, job.params, metrics, sim_trace,
                           job_budget, options_.fault_plan, &result);
  }
  result.estimate_seconds = seconds_since(stage_start);
  if (!error.empty()) {
    return fail(error);
  }

  result.ok = true;
  result.wall_seconds = seconds_since(start);
  return result;
}

ScenarioResult BatchRunner::run_job_cached(const BatchJob& job,
                                           const CompiledEntry& entry,
                                           obs::Registry* metrics,
                                           trace::Trace* sim_trace,
                                           const guard::Budget* sweep) const {
  ScenarioResult result = result_for(job);
  result.backend = options_.backend;

  // Same guard resolution as the isolated path (see run_job).
  const guard::Limits limits = job_limits(options_);
  guard::Budget budget(limits, sweep);
  const bool guarded = limits.any() || sweep != nullptr;
  bool armed = false;
  if (options_.fault_plan != nullptr) {
    if (const auto event = options_.fault_plan->cancel_at_event()) {
      budget.cancel_at_sim_event(*event);
      armed = true;
    }
  }
  guard::Budget* job_budget = guarded || armed ? &budget : nullptr;

  const auto start = std::chrono::steady_clock::now();
  // Per-model facts are shared verbatim — also for failed entries, where
  // the stages before the failing one produced them — so cached and
  // isolated rows match column for column.
  result.check_warnings = entry.check_warnings;
  result.generated_bytes = entry.generated_bytes;
  if (!entry.ok) {
    // The model's one-time compile failed: every one of its jobs reports
    // the same stage-prefixed error; other models are unaffected.
    result.ok = false;
    result.error = entry.error;
    result.wall_seconds = seconds_since(start);
    return result;
  }

  const std::string error = estimate_stage(
      entry.sim.get(), entry.analytic.get(), entry.codegen.get(),
      options_.backend, job.params, metrics, sim_trace, job_budget,
      options_.fault_plan, &result);
  result.estimate_seconds = seconds_since(start);
  if (!error.empty()) {
    result.ok = false;
    result.error = error;
    result.wall_seconds = seconds_since(start);
    return result;
  }

  result.ok = true;
  result.wall_seconds = seconds_since(start);
  return result;
}

void BatchRunner::run_chunk_cached(const BatchJob* jobs, std::size_t count,
                                   const CompiledEntry& entry,
                                   obs::Registry* metrics,
                                   const guard::Budget* sweep,
                                   ScenarioResult* results) const {
  // Chunks exist only on the unlimited fast path (see run()): no per-job
  // limits, no timeout, no fault plan — so the chunk budget's only duty
  // is cooperative sweep cancellation, which is safe to share across the
  // lanes (a trip abandons the chunk and the per-lane fallback below
  // re-attributes it with per-job budgets).
  const guard::Limits limits = job_limits(options_);
  guard::Budget budget(limits, sweep);
  guard::Budget* job_budget =
      limits.any() || sweep != nullptr ? &budget : nullptr;

  const auto start = std::chrono::steady_clock::now();
  std::vector<machine::SystemParameters> params;
  params.reserve(count);
  for (std::size_t lane = 0; lane < count; ++lane) {
    results[lane] = result_for(jobs[lane]);
    results[lane].backend = options_.backend;
    results[lane].check_warnings = entry.check_warnings;
    results[lane].generated_bytes = entry.generated_bytes;
    params.push_back(jobs[lane].params);
  }

  const std::string error = estimate_stage_batch(
      entry.sim.get(), entry.analytic.get(), entry.codegen.get(),
      options_.backend, params, metrics, job_budget, results);
  if (!error.empty()) {
    // Any lane failure (or a sweep cancellation) abandons the chunk:
    // every lane re-runs through the scalar per-job path, which reports
    // errors, budgets and tripped_limit for exactly the right job.
    if (metrics != nullptr) {
      metrics->counter("batch.lanes_fallback").add(count);
    }
    for (std::size_t lane = 0; lane < count; ++lane) {
      results[lane] =
          run_job_cached(jobs[lane], entry, metrics, nullptr, sweep);
    }
    return;
  }
  // Host times are the chunk's elapsed time split evenly — the lanes
  // were evaluated together, so no finer attribution exists.  (These are
  // the non-deterministic CSV columns; predictions are per lane.)
  const double share = seconds_since(start) / static_cast<double>(count);
  for (std::size_t lane = 0; lane < count; ++lane) {
    results[lane].ok = true;
    results[lane].estimate_seconds = share;
    results[lane].wall_seconds = share;
  }
}

BatchReport BatchRunner::run() const {
  BatchReport report;
  report.results.resize(jobs_.size());

  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) {
      threads = 1;
    }
  }
  threads = std::min<int>(threads, static_cast<int>(jobs_.size()));
  threads = std::max(threads, 1);
  report.threads_used = threads;

  const bool collect_metrics = options_.collect_metrics;
  const bool collect_trace = options_.collect_trace;
  if (collect_trace) {
    report.trace.name_process(0, "batch host");
    for (int t = 0; t < threads; ++t) {
      report.trace.name_thread(0, t, "worker " + std::to_string(t));
    }
  }

  const auto start = std::chrono::steady_clock::now();

  // Sweep-wide guard: a `--deadline` becomes a run-local budget chained
  // to the caller's sweep_budget (the SIGINT token), so either signal
  // drains the pool — workers stop claiming tickets, running jobs are
  // cancelled at their next check site, and the partial report is still
  // assembled and flushed below.
  guard::Limits sweep_limits;
  sweep_limits.wall_seconds = options_.deadline_seconds;
  const guard::Budget deadline_budget(sweep_limits, options_.sweep_budget);
  const guard::Budget* sweep =
      options_.deadline_seconds > 0
          ? &deadline_budget
          : static_cast<const guard::Budget*>(options_.sweep_budget);

  // Prepare phase (cached mode): compile every referenced model once —
  // parse, check, transform, Backend::prepare — before the pool starts.
  // The entries are immutable from here on; workers only read them.
  std::vector<CompiledEntry> cache;
  if (!options_.isolate_jobs) {
    cache = compile_models(threads, &report.models_prepared,
                           collect_trace ? &report.trace : nullptr);
    report.prepare_seconds = seconds_since(start);
    if (collect_metrics) {
      // Cached mode pays the lowering (and any codegen compile) once per
      // model; count it here rather than per job (isolated mode counts
      // it inside run_job).
      for (const auto& entry : cache) {
        if (!entry.ok) {
          continue;
        }
        const auto& prepared = entry.sim != nullptr        ? entry.sim
                               : entry.analytic != nullptr ? entry.analytic
                                                           : entry.codegen;
        fold_lowering(&report.metrics, prepared->lowering()->stats());
        fold_codegen(&report.metrics, entry.codegen.get());
      }
    }
  }

  // The first job of each model doubles as that model's representative
  // simulated timeline when tracing is on (one timeline per model keeps
  // the trace readable; every further job would repeat the same shape).
  std::vector<char> trace_job(jobs_.size(), 0);
  if (collect_trace && estimator::backends_of(options_.backend).sim) {
    std::vector<char> seen(models_.size(), 0);
    for (std::size_t index = 0; index < jobs_.size(); ++index) {
      const auto m = static_cast<std::size_t>(jobs_[index].model_index);
      if (seen[m] == 0) {
        seen[m] = 1;
        trace_job[index] = 1;
      }
    }
  }

  // Lane chunking (cached mode): consecutive same-model jobs grouped up
  // to the batch width evaluate through one PreparedModel::estimate_batch
  // call per chunk.  Chunks form only on the unlimited fast path —
  // per-job limits, timeouts and fault plans need per-job budgets, and a
  // model's representative trace job needs its own estimate call —
  // everything else stays a singleton.  A sweep deadline/cancellation
  // does NOT disable chunking: it is checked between chunks, and a
  // mid-chunk trip falls back to the per-lane path.
  struct Chunk {
    std::size_t begin = 0;
    std::size_t size = 1;
  };
  const int lanes = options_.batch_lanes == 0 ? 8 : options_.batch_lanes;
  const bool batching = !options_.isolate_jobs && lanes >= 2 &&
                        !job_limits(options_).any() &&
                        options_.fault_plan == nullptr;
  std::vector<Chunk> chunks;
  chunks.reserve(jobs_.size());
  for (std::size_t index = 0; index < jobs_.size();) {
    Chunk chunk{index, 1};
    if (batching && trace_job[index] == 0 &&
        cache[static_cast<std::size_t>(jobs_[index].model_index)].ok) {
      while (chunk.size < static_cast<std::size_t>(lanes) &&
             index + chunk.size < jobs_.size() &&
             jobs_[index + chunk.size].model_index ==
                 jobs_[index].model_index &&
             trace_job[index + chunk.size] == 0) {
        ++chunk.size;
      }
    }
    chunks.push_back(chunk);
    index += chunk.size;
  }

  // Neither Registry nor TraceLog is thread-safe: each worker owns one
  // of each (trace logs share the report's epoch) and they merge after
  // the join — the hot path never synchronizes on instrumentation.
  std::vector<obs::Registry> worker_metrics(
      collect_metrics ? static_cast<std::size_t>(threads) : 0);
  std::vector<obs::TraceLog> worker_traces;
  if (collect_trace) {
    worker_traces.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      worker_traces.emplace_back(report.trace.epoch());
    }
  }

  // Progress state: plain atomics the workers bump and a monitor thread
  // samples — heartbeats never block the pool.  The worst relative
  // error maxes via CAS on the double's bit pattern (rel errors are
  // non-negative, so the integer order matches the double order).
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> worst_rel_bits{0};

  // Work-stealing by atomic ticket: results land at their job's slot, so
  // the report order is job order no matter which worker ran what.
  // `claimed` marks slots a worker actually ran (each written by exactly
  // one worker); jobs left unclaimed by a sweep deadline/cancellation
  // are marked failed after the join.
  std::vector<char> claimed(jobs_.size(), 0);
  std::atomic<std::size_t> next{0};
  const auto worker = [this, &next, &report, &cache, &worker_metrics,
                       &worker_traces, &trace_job, &done, &worst_rel_bits,
                       &claimed, &chunks, sweep](int worker_id) {
    // Isolated mode constructs the (stateless) backends once per worker
    // thread, not once per job.
    std::unique_ptr<estimator::Backend> sim_backend;
    std::unique_ptr<estimator::Backend> analytic_backend;
    std::unique_ptr<estimator::Backend> codegen_backend;
    if (options_.isolate_jobs) {
      const estimator::BackendSet set =
          estimator::backends_of(options_.backend);
      if (set.sim) {
        sim_backend =
            analytic::make_backend(estimator::BackendKind::Simulation);
      }
      if (set.analytic) {
        analytic_backend =
            analytic::make_backend(estimator::BackendKind::Analytic);
      }
      if (set.codegen) {
        cgen::CodegenOptions cgen_options;
        cgen_options.toolchain.fault_plan = options_.fault_plan;
        codegen_backend = std::make_unique<cgen::CodegenBackend>(
            std::move(cgen_options));
      }
    }
    obs::Registry* metrics =
        worker_metrics.empty()
            ? nullptr
            : &worker_metrics[static_cast<std::size_t>(worker_id)];
    obs::TraceLog* log =
        worker_traces.empty()
            ? nullptr
            : &worker_traces[static_cast<std::size_t>(worker_id)];
    // Worst-rel-error bookkeeping shared by the singleton and chunk
    // paths: max via CAS on the double's bit pattern (rel errors are
    // non-negative, so the integer order matches the double order).
    const auto note_result = [&worst_rel_bits](const ScenarioResult& result) {
      if (!result.ok ||
          !estimator::backends_of(result.backend).cross_validates()) {
        return;
      }
      const double rel = result.relative_error;
      std::uint64_t seen = worst_rel_bits.load(std::memory_order_relaxed);
      while (std::bit_cast<double>(seen) < rel &&
             !worst_rel_bits.compare_exchange_weak(
                 seen, std::bit_cast<std::uint64_t>(rel),
                 std::memory_order_relaxed)) {
      }
    };
    for (;;) {
      // Stop claiming work once the sweep is cancelled or past its
      // deadline; already-claimed jobs finish (or trip) on their own.
      if (sweep != nullptr && sweep->exhausted()) {
        return;
      }
      const std::size_t ticket = next.fetch_add(1);
      if (ticket >= chunks.size()) {
        return;
      }
      const Chunk chunk = chunks[ticket];
      for (std::size_t k = 0; k < chunk.size; ++k) {
        claimed[chunk.begin + k] = 1;
      }
      if (chunk.size > 1) {
        // Lane chunk: one estimate_batch call covers every job.
        const BatchJob& first = jobs_[chunk.begin];
        {
          const obs::TraceLog::HostSpan span(
              log, 0, worker_id,
              "estimate " + first.model_name + " #" +
                  std::to_string(first.id) + "-#" +
                  std::to_string(jobs_[chunk.begin + chunk.size - 1].id),
              "host.estimate");
          run_chunk_cached(
              &jobs_[chunk.begin], chunk.size,
              cache[static_cast<std::size_t>(first.model_index)], metrics,
              sweep, &report.results[chunk.begin]);
        }
        for (std::size_t k = 0; k < chunk.size; ++k) {
          note_result(report.results[chunk.begin + k]);
        }
        done.fetch_add(chunk.size, std::memory_order_release);
        continue;
      }
      const std::size_t index = chunk.begin;
      const BatchJob& job = jobs_[index];
      trace::Trace sim_trace;
      trace::Trace* sim_trace_out =
          (log != nullptr && trace_job[index] != 0) ? &sim_trace : nullptr;
      {
        const obs::TraceLog::HostSpan span(
            log, 0, worker_id,
            "estimate " + job.model_name + " #" + std::to_string(job.id),
            "host.estimate");
        report.results[index] =
            options_.isolate_jobs
                ? run_job(job, sim_backend.get(), analytic_backend.get(),
                          codegen_backend.get(), metrics, sim_trace_out,
                          sweep)
                : run_job_cached(
                      job, cache[static_cast<std::size_t>(job.model_index)],
                      metrics, sim_trace_out, sweep);
      }
      if (sim_trace_out != nullptr) {
        log->append_simulated(sim_trace, sim_pid_base(job.model_index),
                              job.model_name);
      }
      note_result(report.results[index]);
      done.fetch_add(1, std::memory_order_release);
    }
  };

  const auto make_progress = [this, &done, &worst_rel_bits,
                              start](bool final) {
    BatchProgress progress;
    progress.done = done.load(std::memory_order_acquire);
    progress.total = jobs_.size();
    progress.elapsed_seconds = seconds_since(start);
    progress.jobs_per_second =
        progress.elapsed_seconds > 0
            ? static_cast<double>(progress.done) / progress.elapsed_seconds
            : 0;
    progress.eta_seconds =
        progress.jobs_per_second > 0
            ? static_cast<double>(progress.total - progress.done) /
                  progress.jobs_per_second
            : 0;
    progress.worst_rel_error =
        std::bit_cast<double>(worst_rel_bits.load(std::memory_order_relaxed));
    progress.final = final;
    return progress;
  };

  // Heartbeat monitor: wakes every interval until the pool finishes, then
  // stops so the guaranteed final callback never overlaps a periodic one.
  std::thread monitor;
  std::mutex monitor_mutex;
  std::condition_variable monitor_cv;
  bool monitor_stop = false;
  if (options_.on_progress) {
    const auto interval = std::chrono::duration<double>(
        std::max(options_.progress_interval_seconds, 0.01));
    monitor = std::thread([this, &monitor_mutex, &monitor_cv, &monitor_stop,
                           &make_progress, interval] {
      std::unique_lock<std::mutex> lock(monitor_mutex);
      while (!monitor_cv.wait_for(lock, interval,
                                  [&monitor_stop] { return monitor_stop; })) {
        options_.on_progress(make_progress(false));
      }
    });
  }

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }
  if (monitor.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(monitor_mutex);
      monitor_stop = true;
    }
    monitor_cv.notify_all();
    monitor.join();
  }

  // Jobs the drained pool never claimed still get a structured row —
  // the report keeps one result per job under every outcome.
  if (sweep != nullptr) {
    const bool was_cancelled = sweep->cancel_requested();
    for (std::size_t index = 0; index < jobs_.size(); ++index) {
      if (claimed[index] != 0) {
        continue;
      }
      ScenarioResult& result = report.results[index];
      result = result_for(jobs_[index]);
      result.backend = options_.backend;
      result.ok = false;
      result.error = was_cancelled
                         ? "sweep: cancelled before the job started"
                         : "sweep: deadline exceeded before the job started";
      result.tripped_limit = was_cancelled ? "cancelled" : "wall_clock";
    }
  }
  report.wall_seconds = seconds_since(start);

  for (const auto& registry : worker_metrics) {
    report.metrics.merge(registry);
  }
  if (collect_metrics && batching) {
    // The configured lane width; `expr.batch_evals` (folded from the
    // engine counters above) tells whether the vectorized VM actually
    // ran, `batch.lanes_fallback` how many lanes dropped to scalar.
    report.metrics.gauge("expr.batch_width").set(static_cast<double>(lanes));
  }
  for (auto& log : worker_traces) {
    report.trace.merge(std::move(log));
  }
  if (!options_.isolate_jobs) {
    // A cache hit is a job answered from a successfully compiled shared
    // entry (its model's one-time compile served it).
    std::uint64_t hits = 0;
    for (const auto& job : jobs_) {
      if (cache[static_cast<std::size_t>(job.model_index)].ok) {
        ++hits;
      }
    }
    report.metrics.counter("batch.cache_hits").add(hits);
  }
  report.metrics.merge(report.derived_metrics());

  if (options_.on_progress) {
    options_.on_progress(make_progress(true));
  }
  return report;
}

}  // namespace prophet::pipeline
