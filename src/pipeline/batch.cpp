#include "prophet/pipeline/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "prophet/analytic/backend.hpp"
#include "prophet/check/checker.hpp"
#include "prophet/codegen/transformer.hpp"
#include "prophet/estimator/estimator.hpp"
#include "prophet/xmi/xmi.hpp"

namespace prophet::pipeline {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, int job_id) {
  // SplitMix64: uncorrelated per-job streams from one base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    static_cast<std::uint64_t>(job_id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- BatchReport -------------------------------------------------------------

BatchStats BatchReport::stats() const {
  BatchStats stats;
  stats.total = results.size();
  for (const auto& result : results) {
    stats.total_job_seconds += result.wall_seconds;
    if (!result.ok) {
      ++stats.failed;
      continue;
    }
    if (stats.ok == 0) {
      stats.min_predicted = result.predicted_time;
      stats.max_predicted = result.predicted_time;
    } else {
      stats.min_predicted = std::min(stats.min_predicted,
                                     result.predicted_time);
      stats.max_predicted = std::max(stats.max_predicted,
                                     result.predicted_time);
    }
    stats.mean_predicted += result.predicted_time;
    stats.total_events += result.events;
    if (result.backend == estimator::BackendKind::Both) {
      ++stats.compared;
      stats.max_rel_error = std::max(stats.max_rel_error,
                                     result.relative_error);
      stats.mean_rel_error += result.relative_error;
    }
    ++stats.ok;
  }
  if (stats.ok > 0) {
    stats.mean_predicted /= static_cast<double>(stats.ok);
  }
  if (stats.compared > 0) {
    stats.mean_rel_error /= static_cast<double>(stats.compared);
  }
  return stats;
}

double BatchReport::jobs_per_second() const {
  if (wall_seconds <= 0) {
    return 0;
  }
  return static_cast<double>(results.size()) / wall_seconds;
}

std::string BatchReport::summary() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(6);
  out << "scenario sweep: " << results.size() << " job(s), " << threads_used
      << " thread(s), " << wall_seconds << " s wall ("
      << jobs_per_second() << " jobs/s)\n";
  for (const auto& result : results) {
    out << "  [" << result.job_id << "] " << result.model_name << " np="
        << result.params.processes << " nn=" << result.params.nodes
        << " ppn=" << result.params.processors_per_node << " nt="
        << result.params.threads_per_process;
    if (result.ok) {
      out << " -> " << result.predicted_time << " s";
      if (result.backend == estimator::BackendKind::Both) {
        out << " (analytic " << result.analytic_predicted << " s, rel err "
            << result.relative_error << ")";
      } else if (result.backend == estimator::BackendKind::Analytic) {
        out << " (analytic)";
      } else {
        out << " (" << result.events << " events)";
      }
      if (result.check_warnings > 0) {
        out << " [" << result.check_warnings << " warning(s)]";
      }
    } else {
      out << " -> FAILED: " << result.error;
    }
    out << '\n';
  }
  const BatchStats stats = this->stats();
  out << "ok " << stats.ok << " / failed " << stats.failed;
  if (stats.ok > 0) {
    out << "; predicted min " << stats.min_predicted << " s, mean "
        << stats.mean_predicted << " s, max " << stats.max_predicted
        << " s; " << stats.total_events << " events";
  }
  if (stats.compared > 0) {
    out << "; analytic rel err mean " << stats.mean_rel_error << ", max "
        << stats.max_rel_error;
  }
  out << '\n';
  return out.str();
}

std::string BatchReport::to_csv() const {
  std::ostringstream out;
  out.precision(12);
  out << "job,model,np,nn,ppn,nt,cpu_speed,seed,backend,ok,predicted_s,"
         "analytic_s,rel_error,events,warnings,generated_bytes,wall_s,"
         "error\n";
  // Free-text fields (the model name may be a file path) must not break
  // the column layout.
  const auto sanitize = [](std::string text) {
    std::replace(text.begin(), text.end(), ',', ';');
    std::replace(text.begin(), text.end(), '\n', ' ');
    return text;
  };
  for (const auto& result : results) {
    const std::string error = sanitize(result.error);
    out << result.job_id << ',' << sanitize(result.model_name) << ','
        << result.params.processes << ',' << result.params.nodes << ','
        << result.params.processors_per_node << ','
        << result.params.threads_per_process << ','
        << result.params.cpu_speed << ',' << result.seed << ','
        << estimator::to_string(result.backend) << ','
        << (result.ok ? 1 : 0) << ',' << result.predicted_time << ','
        << result.analytic_predicted << ',' << result.relative_error << ','
        << result.events << ',' << result.check_warnings << ','
        << result.generated_bytes << ',' << result.wall_seconds << ','
        << error << '\n';
  }
  return out.str();
}

// --- BatchRunner -------------------------------------------------------------

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

int BatchRunner::add_model(std::string name, const uml::Model& model) {
  return add_model_xml(std::move(name), xmi::to_xml(model));
}

int BatchRunner::add_model_xml(std::string name, std::string xmi_text) {
  models_.push_back(ModelEntry{std::move(name), std::move(xmi_text)});
  return static_cast<int>(models_.size()) - 1;
}

int BatchRunner::add_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read model file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return add_model_xml(path, text.str());
}

void BatchRunner::add_scenario(int model_index,
                               machine::SystemParameters params) {
  if (model_index < 0 ||
      model_index >= static_cast<int>(models_.size())) {
    throw std::out_of_range("model index out of range");
  }
  BatchJob job;
  job.id = static_cast<int>(jobs_.size());
  job.model_index = model_index;
  job.model_name = models_[static_cast<std::size_t>(model_index)].name;
  job.params = params;
  job.seed = derive_seed(options_.base_seed, job.id);
  jobs_.push_back(std::move(job));
}

void BatchRunner::add_sweep(int model_index, const ScenarioGrid& grid) {
  for (const auto& params : grid.expand()) {
    add_scenario(model_index, params);
  }
}

void BatchRunner::add_sweep_all(const ScenarioGrid& grid) {
  const auto scenarios = grid.expand();
  for (int m = 0; m < static_cast<int>(models_.size()); ++m) {
    for (const auto& params : scenarios) {
      add_scenario(m, params);
    }
  }
}

ScenarioResult BatchRunner::run_job(const BatchJob& job) const {
  ScenarioResult result;
  result.job_id = job.id;
  result.model_index = job.model_index;
  result.model_name = job.model_name;
  result.params = job.params;
  result.seed = job.seed;

  const auto start = std::chrono::steady_clock::now();
  const auto fail = [&](const std::string& stage,
                        const std::string& why) -> ScenarioResult {
    result.ok = false;
    result.error = stage + ": " + why;
    result.wall_seconds = seconds_since(start);
    return result;
  };

  // Stage 1: parse — every job owns its model copy.
  uml::Model model("empty");
  try {
    model = xmi::from_xml(
        models_[static_cast<std::size_t>(job.model_index)].xmi);
  } catch (const std::exception& error) {
    return fail("parse", error.what());
  }

  // Stage 2: model check.
  if (options_.run_checker) {
    try {
      const check::ModelChecker checker;
      const check::Diagnostics diagnostics = checker.check(model);
      result.check_warnings = diagnostics.warning_count();
      if (!diagnostics.ok()) {
        return fail("check", std::to_string(diagnostics.error_count()) +
                                 " error(s): " + diagnostics.to_string());
      }
    } catch (const std::exception& error) {
      return fail("check", error.what());
    }
  }

  // Stage 3: UML -> C++ transformation (the paper's PMP element).
  if (options_.run_codegen) {
    try {
      const codegen::Transformer transformer;
      result.generated_bytes = transformer.transform(model).size();
    } catch (const std::exception& error) {
      return fail("transform", error.what());
    }
  }

  // Stage 4: estimate with the selected backend(s).
  const estimator::BackendKind kind = options_.backend;
  result.backend = kind;
  const estimator::EstimationOptions estimation{.collect_trace = false};
  if (kind != estimator::BackendKind::Analytic) {
    try {
      const auto backend =
          analytic::make_backend(estimator::BackendKind::Simulation);
      const estimator::PredictionReport report =
          backend->estimate(model, job.params, estimation);
      result.predicted_time = report.predicted_time;
      result.events = report.events;
      result.processes = report.processes;
    } catch (const std::exception& error) {
      return fail("simulate", error.what());
    }
  }
  if (kind != estimator::BackendKind::Simulation) {
    try {
      const auto backend =
          analytic::make_backend(estimator::BackendKind::Analytic);
      const estimator::PredictionReport report =
          backend->estimate(model, job.params, estimation);
      result.analytic_predicted = report.predicted_time;
      result.processes = report.processes;
      if (kind == estimator::BackendKind::Analytic) {
        result.predicted_time = report.predicted_time;
      } else if (result.predicted_time > 0) {
        result.relative_error =
            std::abs(result.analytic_predicted - result.predicted_time) /
            result.predicted_time;
      } else {
        result.relative_error =
            result.analytic_predicted > 0
                ? std::numeric_limits<double>::infinity()
                : 0;
      }
    } catch (const std::exception& error) {
      return fail("analytic", error.what());
    }
  }

  result.ok = true;
  result.wall_seconds = seconds_since(start);
  return result;
}

BatchReport BatchRunner::run() const {
  BatchReport report;
  report.results.resize(jobs_.size());

  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) {
      threads = 1;
    }
  }
  threads = std::min<int>(threads, static_cast<int>(jobs_.size()));
  threads = std::max(threads, 1);
  report.threads_used = threads;

  const auto start = std::chrono::steady_clock::now();
  // Work-stealing by atomic ticket: results land at their job's slot, so
  // the report order is job order no matter which worker ran what.
  std::atomic<std::size_t> next{0};
  const auto worker = [this, &next, &report] {
    for (;;) {
      const std::size_t index = next.fetch_add(1);
      if (index >= jobs_.size()) {
        return;
      }
      report.results[index] = run_job(jobs_[index]);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (auto& thread : pool) {
      thread.join();
    }
  }
  report.wall_seconds = seconds_since(start);
  return report;
}

}  // namespace prophet::pipeline
