#include "prophet/obs/obs.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <stdexcept>

namespace prophet::obs {

namespace {

/// Shortest round-trip decimal form of a double; always a valid JSON
/// number ("nan"/"inf" never reach exports — cells start at zero and
/// accumulate finite increments, but guard anyway).
std::string format_double(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry::Cell& Registry::cell(std::string_view name, Cell::Kind kind) {
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(std::string(name), Cell{kind, 0, 0.0}).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs: metric '" + std::string(name) +
                           "' requested with a different kind");
  }
  return it->second;
}

Counter Registry::counter(std::string_view name) {
  return Counter(&cell(name, Cell::Kind::Counter).count);
}

Gauge Registry::gauge(std::string_view name) {
  return Gauge(&cell(name, Cell::Kind::Gauge).value);
}

Timer Registry::timer(std::string_view name) {
  return Timer(&cell(name, Cell::Kind::Timer).value);
}

// The folds run once per estimation, which on the analytic fast path is
// every couple of microseconds — so they reuse one key buffer (the
// transparent map comparator finds by string_view) instead of
// allocating a fresh name per cell.
namespace {

class FoldKey {
 public:
  explicit FoldKey(std::string_view prefix) : key_(prefix) {}

  std::string_view with(std::string_view name) {
    key_.resize(key_.size() - suffix_);
    key_ += name;
    suffix_ = name.size();
    return key_;
  }

 private:
  std::string key_;
  std::size_t suffix_ = 0;
};

}  // namespace

void Registry::fold(std::string_view prefix, const ExprCounters& counters) {
  FoldKey key(prefix);
  counter(key.with("instructions")).add(counters.instructions);
  counter(key.with("evals")).add(counters.evals);
  counter(key.with("lazy_errors")).add(counters.lazy_errors);
  counter(key.with("batch_evals")).add(counters.batch_evals);
}

void Registry::fold(std::string_view prefix, const SimCounters& counters) {
  FoldKey key(prefix);
  counter(key.with("messages")).add(counters.messages);
  counter(key.with("barriers")).add(counters.barriers);
  counter(key.with("context_switches")).add(counters.context_switches);
}

void Registry::fold(std::string_view prefix,
                    const AnalyticCounters& counters) {
  FoldKey key(prefix);
  counter(key.with("loop_collapses")).add(counters.loop_collapses);
  counter(key.with("spmd_fast_path")).add(counters.spmd_fast_path);
  counter(key.with("events_replayed")).add(counters.events_replayed);
  counter(key.with("schedule_wins")).add(counters.schedule_wins);
  counter(key.with("capacity_wins")).add(counters.capacity_wins);
  counter(key.with("critical_wins")).add(counters.critical_wins);
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, incoming] : other.cells_) {
    Cell& mine = cell(name, incoming.kind);
    mine.count += incoming.count;
    mine.value += incoming.value;
  }
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0 : it->second.count;
}

double Registry::gauge_value(std::string_view name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? 0.0 : it->second.value;
}

double Registry::timer_seconds(std::string_view name) const {
  return gauge_value(name);
}

std::string Registry::to_json() const {
  std::string out = "{\n  \"schema\": \"prophet-metrics-1\"";
  const auto emit_section = [&](const char* title, Cell::Kind kind) {
    out += ",\n  \"";
    out += title;
    out += "\": {";
    bool first = true;
    for (const auto& [name, cell] : cells_) {
      if (cell.kind != kind) {
        continue;
      }
      out += first ? "\n    " : ",\n    ";
      first = false;
      append_json_string(out, name);
      out += ": ";
      out += kind == Cell::Kind::Counter ? std::to_string(cell.count)
                                         : format_double(cell.value);
    }
    out += first ? "}" : "\n  }";
  };
  emit_section("counters", Cell::Kind::Counter);
  emit_section("gauges", Cell::Kind::Gauge);
  emit_section("timers", Cell::Kind::Timer);
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// TraceLog
// ---------------------------------------------------------------------------

double TraceLog::now_us() const {
  const auto elapsed = Clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

void TraceLog::complete(double start_us, double dur_us, int pid, int tid,
                        std::string name, std::string cat) {
  Span span;
  span.start_us = start_us;
  span.dur_us = std::max(dur_us, 0.0);
  span.pid = pid;
  span.tid = tid;
  span.name = std::move(name);
  span.cat = std::move(cat);
  spans_.push_back(std::move(span));
}

void TraceLog::name_process(int pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void TraceLog::name_thread(int pid, int tid, std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

void TraceLog::append_simulated(const trace::Trace& trace, int base_pid,
                                std::string_view label) {
  for (const auto& event : trace.events()) {
    complete(event.start * 1e6, event.duration() * 1e6,
             base_pid + event.pid, event.tid, event.element,
             std::string("sim.") + std::string(to_string(event.kind)));
    const int pid = base_pid + event.pid;
    if (process_names_.find(pid) == process_names_.end()) {
      name_process(pid, std::string(label) + " p" +
                            std::to_string(event.pid) + " (simulated)");
    }
  }
}

void TraceLog::merge(TraceLog&& other) {
  spans_.insert(spans_.end(),
                std::make_move_iterator(other.spans_.begin()),
                std::make_move_iterator(other.spans_.end()));
  for (auto& [pid, name] : other.process_names_) {
    process_names_.emplace(pid, std::move(name));
  }
  for (auto& [key, name] : other.thread_names_) {
    thread_names_.emplace(key, std::move(name));
  }
  other.spans_.clear();
  other.process_names_.clear();
  other.thread_names_.clear();
}

std::string TraceLog::to_chrome_json() const {
  std::vector<const Span*> ordered;
  ordered.reserve(spans_.size());
  for (const auto& span : spans_) {
    ordered.push_back(&span);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     return a->start_us < b->start_us;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    out += R"({"ph":"M","name":"process_name","pid":)" +
           std::to_string(pid) + R"(,"tid":0,"args":{"name":)";
    append_json_string(out, name);
    out += "}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    out += R"({"ph":"M","name":"thread_name","pid":)" +
           std::to_string(key.first) + R"(,"tid":)" +
           std::to_string(key.second) + R"(,"args":{"name":)";
    append_json_string(out, name);
    out += "}}";
  }
  for (const Span* span : ordered) {
    sep();
    out += R"({"ph":"X","ts":)" + format_double(span->start_us) +
           R"(,"dur":)" + format_double(span->dur_us) + R"(,"pid":)" +
           std::to_string(span->pid) + R"(,"tid":)" +
           std::to_string(span->tid) + R"(,"name":)";
    append_json_string(out, span->name);
    out += R"(,"cat":)";
    append_json_string(out, span->cat);
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace prophet::obs
