// AnalyticEstimator: closed-form predictions, loop collapsing,
// probability-weighted branches, replay semantics, and the backend
// adapters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "prophet/analytic/analytic.hpp"
#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/prophet.hpp"
#include "prophet/uml/builder.hpp"

namespace analytic = prophet::analytic;
namespace estimator = prophet::estimator;
namespace machine = prophet::machine;
namespace uml = prophet::uml;

namespace {

machine::SystemParameters params_np(int np, int nodes = 1, int ppn = 1) {
  machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes;
  params.processors_per_node = ppn;
  return params;
}

TEST(AnalyticEstimator, Kernel6MatchesClosedForm) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const auto report = analyzer.evaluate(params_np(1));
  // FK6 = M * (N*(N-1)/2) * c.
  const double expected = 16.0 * (64.0 * 63.0 / 2.0) * 1e-8;
  EXPECT_NEAR(report.predicted_time, expected, expected * 1e-12);
  EXPECT_EQ(report.processes, 1);
  ASSERT_EQ(report.node_loads.size(), 1u);
  EXPECT_NEAR(report.node_loads[0].utilization, 1.0, 1e-9);
}

TEST(AnalyticEstimator, ContendedNodeSerializesDemand) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const double one = 16.0 * (64.0 * 63.0 / 2.0) * 1e-8;
  // 8 SPMD processes on one 1-processor node serialize completely.
  const auto contended = analyzer.evaluate(params_np(8, 1, 1));
  EXPECT_NEAR(contended.predicted_time, 8 * one, 8 * one * 1e-12);
  // With 8 processors they run fully in parallel.
  const auto parallel = analyzer.evaluate(params_np(8, 1, 8));
  EXPECT_NEAR(parallel.predicted_time, one, one * 1e-12);
  // Spread over 2 nodes with 4 processors each: still fully parallel.
  const auto spread = analyzer.evaluate(params_np(8, 2, 4));
  EXPECT_NEAR(spread.predicted_time, one, one * 1e-12);
}

TEST(AnalyticEstimator, CpuSpeedScalesCompute) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  auto params = params_np(1);
  params.cpu_speed = 2.0;
  const double expected = 16.0 * (64.0 * 63.0 / 2.0) * 1e-8 / 2.0;
  EXPECT_NEAR(analyzer.evaluate(params).predicted_time, expected,
              expected * 1e-12);
}

TEST(AnalyticEstimator, DetailedKernel6CollapsesLoops) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_detailed_model(64, 16, 1e-8));
  const auto report = analyzer.evaluate(params_np(1));
  const double expected = 16.0 * (64.0 * 63.0 / 2.0) * 1e-8;
  EXPECT_NEAR(report.predicted_time, expected, expected * 1e-9);
  // The L loop (16 iterations) and every k loop collapse after their
  // first iteration; only the i loop (trip count feeds the k loop) is
  // iterated.  A full walk would visit ~16 * 2016 * 3 elements.
  EXPECT_LT(report.evaluated_elements, 2000u);
}

TEST(AnalyticEstimator, SampleModelSumsPerProcessDemand) {
  const analytic::AnalyticEstimator analyzer(prophet::models::sample_model());
  // Per process: A1 + SA1 + SA2(pid) + A4
  //   A1 = 1e-6*16*16 + 0.001 = 0.001256, SA1 = 0.0016, A4 = 0.002,
  //   SA2(pid) = 0.0005*pid + 0.001.
  const auto common = 0.001256 + 0.0016 + 0.002;
  const auto uncontended = analyzer.evaluate(params_np(4, 1, 4));
  ASSERT_EQ(uncontended.per_process_finish.size(), 4u);
  for (int pid = 0; pid < 4; ++pid) {
    const double expected = common + 0.001 + 0.0005 * pid;
    EXPECT_NEAR(uncontended.per_process_finish.at(pid), expected, 1e-12)
        << "pid " << pid;
  }
  // One shared processor: the node serializes the summed demand.
  const auto contended = analyzer.evaluate(params_np(4, 1, 1));
  const double total = 4 * (common + 0.001) + 0.0005 * (0 + 1 + 2 + 3);
  EXPECT_NEAR(contended.predicted_time, total, 1e-12);
}

TEST(AnalyticEstimator, PingPongReplaysMessageTimeline) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::pingpong_model(1024, 8));
  const auto params = params_np(2);
  const auto report = analyzer.evaluate(params);
  // Per round: two sends (overhead each) and two transfers, strictly
  // serialized by the request-reply dependency.
  const double transfer =
      params.memory_latency + 1024.0 / params.memory_bandwidth;
  const double round = 2 * params.network_overhead + 2 * transfer;
  EXPECT_NEAR(report.predicted_time, 8 * round, 8 * round * 1e-9);
  // Rank 1's last send completes one transfer before rank 0 finishes.
  EXPECT_NEAR(report.per_process_finish.at(0) -
                  report.per_process_finish.at(1),
              transfer, transfer * 1e-6);
}

TEST(AnalyticEstimator, ProbabilisticDecisionTakesExpectation) {
  uml::ModelBuilder mb("Prob");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef decision = main.decision();
  uml::NodeRef cheap = main.action("Cheap").cost("0.002");
  uml::NodeRef dear = main.action("Dear").cost("0.004");
  uml::NodeRef merge = main.merge();
  uml::NodeRef tail = main.action("Tail").cost("0.001");
  uml::NodeRef fin = main.final_node();
  main.flow(init, decision);
  main.flow(decision, cheap, "GV > 0")
      .set_tag(uml::tag::kProb, uml::TagValue(0.25));
  main.flow(decision, dear, "else");
  main.flow(cheap, merge);
  main.flow(dear, merge);
  main.flow(merge, tail);
  main.flow(tail, fin);
  mb.global("GV", uml::VariableType::Real, "1");

  const analytic::AnalyticEstimator analyzer(std::move(mb).build());
  const auto report = analyzer.evaluate(params_np(1));
  // E[branch] = 0.25 * 0.002 + 0.75 * 0.004, plus the tail.
  EXPECT_NEAR(report.predicted_time, 0.25 * 0.002 + 0.75 * 0.004 + 0.001,
              1e-12);
}

TEST(AnalyticEstimator, ProbabilisticBranchMayNestConcreteDecisions) {
  // A prob-weighted branch containing an ordinary guarded if/else that
  // reconverges at its own merge: the inner merge must not be mistaken
  // for the probabilistic branch's reconvergence point.
  uml::ModelBuilder mb("NestedProb");
  mb.global("GV", uml::VariableType::Real, "1");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef outer = main.decision("Outer");
  uml::NodeRef inner = main.decision("Inner");
  uml::NodeRef inner_yes = main.action("InnerYes").cost("0.002");
  uml::NodeRef inner_no = main.action("InnerNo").cost("0.006");
  uml::NodeRef inner_merge = main.merge();
  uml::NodeRef other = main.action("Other").cost("0.010");
  uml::NodeRef outer_merge = main.merge();
  uml::NodeRef fin = main.final_node();
  main.flow(init, outer);
  main.flow(outer, inner, "GV > 0")
      .set_tag(uml::tag::kProb, uml::TagValue(0.5));
  main.flow(outer, other, "else");
  main.flow(inner, inner_yes, "GV > 0");
  main.flow(inner, inner_no, "else");
  main.flow(inner_yes, inner_merge);
  main.flow(inner_no, inner_merge);
  main.flow(inner_merge, outer_merge);
  main.flow(other, outer_merge);
  main.flow(outer_merge, fin);

  const analytic::AnalyticEstimator analyzer(std::move(mb).build());
  const auto report = analyzer.evaluate(params_np(1));
  // Inner decision resolves concretely (GV > 0 -> 0.002); expectation is
  // over the outer branches only: 0.5 * 0.002 + 0.5 * 0.010.
  EXPECT_NEAR(report.predicted_time, 0.5 * 0.002 + 0.5 * 0.010, 1e-12);
}

TEST(AnalyticEstimator, ReceiveWithoutSenderIsDeadlock) {
  uml::ModelBuilder mb("Deadlock");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef orphan = main.recv("Orphan", "np - 1 - pid", "8");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, orphan, fin});
  // build_unchecked: the builder's own lint would reject the orphan recv.
  const analytic::AnalyticEstimator analyzer(std::move(mb).build_unchecked());
  // With one process the receive can never be matched.
  EXPECT_THROW((void)analyzer.evaluate(params_np(1)),
               analytic::AnalyticError);
}

TEST(AnalyticEstimator, CommunicationInsideRegionIsRejected) {
  uml::ModelBuilder mb("RegionComm");
  uml::DiagramBuilder body = mb.diagram("body");
  {
    uml::NodeRef init = body.initial();
    uml::NodeRef send = body.send("Leak", "0", "8");
    uml::NodeRef fin = body.final_node();
    body.sequence({init, send, fin});
  }
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef region = main.omp_parallel("Region", body, "2");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, region, fin});
  // build_unchecked: the builder's own lint would reject the lone send.
  uml::Model model = std::move(mb).build_unchecked();
  model.set_main_diagram(main.id());

  const analytic::AnalyticEstimator analyzer(std::move(model));
  EXPECT_THROW((void)analyzer.evaluate(params_np(2)), analytic::AnalyticError);
}

TEST(AnalyticEstimator, ParallelRegionUsesThreadMaximum) {
  uml::ModelBuilder mb("Region");
  uml::DiagramBuilder body = mb.diagram("body");
  {
    uml::NodeRef init = body.initial();
    // tid-dependent cost: thread t works (t+1) ms.
    uml::NodeRef work = body.action("Work").cost("0.001 * (tid + 1)");
    uml::NodeRef fin = body.final_node();
    body.sequence({init, work, fin});
  }
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef region = main.omp_parallel("Region", body, "4");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, region, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());

  const analytic::AnalyticEstimator analyzer(std::move(model));
  // Plenty of processors: region ends with its slowest thread (4 ms).
  EXPECT_NEAR(analyzer.evaluate(params_np(1, 1, 8)).predicted_time, 0.004,
              1e-12);
  // One processor: all thread demand (1+2+3+4 ms) serializes.
  EXPECT_NEAR(analyzer.evaluate(params_np(1, 1, 1)).predicted_time, 0.010,
              1e-12);
}

TEST(AnalyticEstimator, EvaluateIsDeterministicAndReentrant) {
  const analytic::AnalyticEstimator analyzer(prophet::models::sample_model());
  const auto first = analyzer.evaluate(params_np(4));
  const auto second = analyzer.evaluate(params_np(4));
  EXPECT_EQ(first.predicted_time, second.predicted_time);
  EXPECT_EQ(first.per_process_finish, second.per_process_finish);
  EXPECT_EQ(first.evaluated_elements, second.evaluated_elements);
}

TEST(AnalyticEstimator, RejectsUnparseableModels) {
  uml::ModelBuilder mb("Broken");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef bad = main.action("Bad").cost("1 + ");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, bad, fin});
  uml::Model model = std::move(mb).build();
  EXPECT_THROW(analytic::AnalyticEstimator{std::move(model)},
               analytic::AnalyticError);
}

// --- Backend abstraction -----------------------------------------------------

TEST(Backend, KindParsesAndPrints) {
  using estimator::BackendKind;
  EXPECT_EQ(estimator::backend_from_string("sim"), BackendKind::Simulation);
  EXPECT_EQ(estimator::backend_from_string("simulation"),
            BackendKind::Simulation);
  EXPECT_EQ(estimator::backend_from_string("analytic"),
            BackendKind::Analytic);
  EXPECT_EQ(estimator::backend_from_string("both"), BackendKind::Both);
  EXPECT_FALSE(estimator::backend_from_string("fem").has_value());
  EXPECT_EQ(estimator::to_string(BackendKind::Simulation), "sim");
  EXPECT_EQ(estimator::to_string(BackendKind::Analytic), "analytic");
  EXPECT_EQ(estimator::to_string(BackendKind::Both), "both");
}

TEST(Backend, FactoryBuildsEngines) {
  const auto sim = analytic::make_backend(estimator::BackendKind::Simulation);
  EXPECT_EQ(sim->name(), "sim");
  const auto an = analytic::make_backend(estimator::BackendKind::Analytic);
  EXPECT_EQ(an->name(), "analytic");
  EXPECT_THROW((void)analytic::make_backend(estimator::BackendKind::Both),
               std::invalid_argument);
}

TEST(Backend, SimulationBackendMatchesProphetEstimate) {
  const uml::Model model = prophet::models::sample_model();
  const auto params = params_np(2);
  const auto via_backend =
      analytic::SimulationBackend().estimate(model, params);
  const auto via_facade =
      prophet::Prophet(prophet::models::sample_model()).estimate(params);
  EXPECT_EQ(via_backend.predicted_time, via_facade.predicted_time);
  EXPECT_EQ(via_backend.per_process_finish, via_facade.per_process_finish);
}

TEST(Backend, AnalyticBackendMatchesEstimator) {
  const uml::Model model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto params = params_np(4);
  const auto via_backend = analytic::AnalyticBackend().estimate(model, params);
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const auto direct = analyzer.evaluate(params);
  EXPECT_EQ(via_backend.predicted_time, direct.predicted_time);
  EXPECT_EQ(via_backend.processes, direct.processes);
  EXPECT_EQ(via_backend.events, 0u);
  EXPECT_FALSE(via_backend.machine_report.empty());
}

// --- PreparedModel (prepare-once/evaluate-many) ------------------------------

TEST(Backend, PrepareOnceMatchesOneShotEstimate) {
  const uml::Model model = prophet::models::kernel6_model(64, 16, 1e-8);
  const auto grid = {params_np(1), params_np(2), params_np(4, 2, 2)};
  for (const estimator::BackendKind kind :
       {estimator::BackendKind::Simulation, estimator::BackendKind::Analytic}) {
    const auto backend = analytic::make_backend(kind);
    const auto prepared = backend->prepare(model);
    EXPECT_EQ(prepared->backend_name(), backend->name());
    for (const auto& params : grid) {
      const auto via_prepared = prepared->estimate(params);
      const auto one_shot = backend->estimate(model, params);
      // The contract: bit-identical to the one-shot path.
      EXPECT_EQ(via_prepared.predicted_time, one_shot.predicted_time);
      EXPECT_EQ(via_prepared.events, one_shot.events);
      EXPECT_EQ(via_prepared.per_process_finish, one_shot.per_process_finish);
    }
  }
}

TEST(Backend, PreparedEstimateSkipsMachineReportOnRequest) {
  const uml::Model model = prophet::models::sample_model();
  const auto prepared = analytic::AnalyticBackend().prepare(model);
  estimator::EstimationOptions lean;
  lean.collect_trace = false;
  lean.collect_machine_report = false;
  EXPECT_TRUE(prepared->estimate(params_np(2), lean).machine_report.empty());
  EXPECT_FALSE(prepared->estimate(params_np(2)).machine_report.empty());
  // Skipping the report never changes the prediction.
  EXPECT_EQ(prepared->estimate(params_np(2), lean).predicted_time,
            prepared->estimate(params_np(2)).predicted_time);
}

// One prepared handle, many threads: estimate() must be deterministic
// under concurrency (the batch pipeline's cached mode leans on this).
// The assertions check result identity; the sanitizer CI job adds
// ASan/UBSan memory-error coverage.  Note neither detects data races —
// race-freedom rests on the PreparedModel design (no mutable shared
// state), not on this test alone.
TEST(Backend, PreparedEstimateIsThreadSafeUnderConcurrentCalls) {
  const uml::Model model = prophet::models::kernel6_model(64, 16, 1e-8);
  const std::vector<machine::SystemParameters> grid = {
      params_np(1), params_np(2), params_np(4, 2, 2), params_np(8, 2, 4)};
  for (const estimator::BackendKind kind :
       {estimator::BackendKind::Simulation, estimator::BackendKind::Analytic}) {
    const auto prepared = analytic::make_backend(kind)->prepare(model);
    std::vector<double> expected;
    expected.reserve(grid.size());
    for (const auto& params : grid) {
      expected.push_back(prepared->estimate(params).predicted_time);
    }

    constexpr int kThreads = 4;
    constexpr int kRounds = 8;
    std::vector<std::vector<double>> seen(kThreads);
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          for (const auto& params : grid) {
            seen[static_cast<std::size_t>(t)].push_back(
                prepared->estimate(params).predicted_time);
          }
        }
      });
    }
    for (auto& thread : pool) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(seen[static_cast<std::size_t>(t)].size(),
                grid.size() * kRounds);
      for (std::size_t i = 0; i < seen[static_cast<std::size_t>(t)].size();
           ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(t)][i],
                  expected[i % grid.size()])
            << "backend " << estimator::to_string(kind) << ", thread " << t;
      }
    }
  }
}

// Unparseable expressions surface at prepare(), not at estimate() — the
// batch pipeline relies on this to fail a model's jobs up front.
TEST(Backend, PrepareThrowsOnUnparseableModel) {
  uml::ModelBuilder mb("bad");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef bad = main.action("Bad").cost("1 + ");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, bad, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_ANY_THROW((void)analytic::SimulationBackend().prepare(model));
  EXPECT_ANY_THROW((void)analytic::AnalyticBackend().prepare(model));
}

}  // namespace
