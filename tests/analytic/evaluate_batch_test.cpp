// AnalyticEstimator::evaluate_batch and the estimate_batch backend
// contract: batched evaluation must be bit-identical to the scalar loop
// (reports, per-process finish times, replayed-element counts), fall
// back cleanly on models whose lanes diverge, and report the fallback.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "prophet/analytic/analytic.hpp"
#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/obs/obs.hpp"
#include "prophet/prophet.hpp"

namespace analytic = prophet::analytic;
namespace estimator = prophet::estimator;
namespace machine = prophet::machine;
namespace obs = prophet::obs;

namespace {

machine::SystemParameters params_np(int np, int nodes = 1, int ppn = 1) {
  machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes;
  params.processors_per_node = ppn;
  return params;
}

std::vector<machine::SystemParameters> lane_grid() {
  std::vector<machine::SystemParameters> lanes;
  for (const int np : {1, 2, 4, 8}) {
    for (const int nodes : {1, 2}) {
      lanes.push_back(params_np(np, nodes, 2));
    }
  }
  return lanes;
}

void expect_reports_identical(const analytic::AnalyticReport& a,
                              const analytic::AnalyticReport& b) {
  // Bit-exact, not approximately equal.
  EXPECT_EQ(a.predicted_time, b.predicted_time);
  EXPECT_EQ(a.processes, b.processes);
  EXPECT_EQ(a.evaluated_elements, b.evaluated_elements);
  EXPECT_EQ(a.per_process_finish, b.per_process_finish);
  ASSERT_EQ(a.node_loads.size(), b.node_loads.size());
  for (std::size_t i = 0; i < a.node_loads.size(); ++i) {
    EXPECT_EQ(a.node_loads[i].utilization, b.node_loads[i].utilization) << i;
  }
}

TEST(AnalyticBatch, MatchesScalarLoopBitExactly) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const auto lanes = lane_grid();
  const auto batched = analyzer.evaluate_batch(lanes);
  ASSERT_EQ(batched.size(), lanes.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    expect_reports_identical(batched[lane], analyzer.evaluate(lanes[lane]));
  }
}

TEST(AnalyticBatch, SpmdFastPathTakesOneBatchedWalk) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const auto lanes = lane_grid();
  obs::AnalyticCounters counters;
  std::size_t lanes_fallback = 0;
  const auto batched =
      analyzer.evaluate_batch(lanes, &counters, nullptr, &lanes_fallback);
  ASSERT_EQ(batched.size(), lanes.size());
  EXPECT_EQ(lanes_fallback, 0u);
  // Every lane finalized through the shared batched walk.
  EXPECT_EQ(counters.spmd_fast_path, lanes.size());
  EXPECT_GT(counters.expr.batch_evals, 0u);
}

TEST(AnalyticBatch, DivergentModelsFallBackToScalarLanes) {
  // The random workload takes probabilistic decisions — lanes cannot
  // stay in lockstep, so the batched walk must bail out and the scalar
  // loop must produce the results (bit-identical by construction; the
  // fallback count reports the bail-out).
  const prophet::models::Registry& registry =
      prophet::models::Registry::builtin();
  const analytic::AnalyticEstimator analyzer(registry.make("@random"));
  std::vector<machine::SystemParameters> lanes;
  for (const int np : {1, 2, 4, 8}) {
    lanes.push_back(params_np(np));
  }
  std::size_t lanes_fallback = 0;
  const auto batched =
      analyzer.evaluate_batch(lanes, nullptr, nullptr, &lanes_fallback);
  ASSERT_EQ(batched.size(), lanes.size());
  EXPECT_EQ(lanes_fallback, lanes.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    expect_reports_identical(batched[lane], analyzer.evaluate(lanes[lane]));
  }
}

TEST(AnalyticBatch, SingleLaneUsesTheScalarPath) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(8, 2, 1e-8));
  const std::vector<machine::SystemParameters> one = {params_np(4, 2, 2)};
  const auto batched = analyzer.evaluate_batch(one);
  ASSERT_EQ(batched.size(), 1u);
  expect_reports_identical(batched[0], analyzer.evaluate(one[0]));
}

TEST(AnalyticBatch, EmptySpanYieldsNoReports) {
  const analytic::AnalyticEstimator analyzer(
      prophet::models::kernel6_model(8, 2, 1e-8));
  EXPECT_TRUE(analyzer.evaluate_batch({}).empty());
}

// --- PreparedModel::estimate_batch ------------------------------------------

TEST(AnalyticBatch, PreparedEstimateBatchMatchesScalarEstimates) {
  const prophet::uml::Model model = prophet::models::kernel6_model(64, 16, 1e-8);
  const analytic::AnalyticBackend backend;
  const auto prepared = backend.prepare(model);
  const auto lanes = lane_grid();
  const auto batched = prepared->estimate_batch(lanes);
  ASSERT_EQ(batched.size(), lanes.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const auto scalar = prepared->estimate(lanes[lane]);
    EXPECT_EQ(batched[lane].predicted_time, scalar.predicted_time) << lane;
    EXPECT_EQ(batched[lane].processes, scalar.processes) << lane;
    EXPECT_EQ(batched[lane].per_process_finish, scalar.per_process_finish)
        << lane;
  }
}

TEST(AnalyticBatch, DefaultEstimateBatchIsTheScalarLoop) {
  // The simulation backend does not override estimate_batch: the base
  // implementation must loop estimate() and stay bit-identical to it.
  const prophet::uml::Model model = prophet::models::kernel6_model(8, 2, 1e-8);
  const analytic::SimulationBackend backend;
  const auto prepared = backend.prepare(model);
  const std::vector<machine::SystemParameters> lanes = {params_np(1),
                                                        params_np(2, 2, 1)};
  const auto batched = prepared->estimate_batch(lanes);
  ASSERT_EQ(batched.size(), lanes.size());
  for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
    const auto scalar = prepared->estimate(lanes[lane]);
    EXPECT_EQ(batched[lane].predicted_time, scalar.predicted_time) << lane;
    EXPECT_EQ(batched[lane].events, scalar.events) << lane;
  }
}

}  // namespace
