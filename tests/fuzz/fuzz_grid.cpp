// libFuzzer harness for the sweep grid-spec parser.  Arbitrary bytes
// must expand to a grid or raise std::invalid_argument — in particular
// overflowing ranges ("np=1..9e18:*2") and absurd axis sizes must be
// rejected, not ground through.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "prophet/machine/machine.hpp"
#include "prophet/pipeline/scenario.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    (void)prophet::pipeline::ScenarioGrid::parse(
        text, prophet::machine::SystemParameters{});
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
