// libFuzzer harness for the cost-expression parser.  Arbitrary bytes
// must parse or raise expr::SyntaxError — nothing else.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "prophet/expr/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    (void)prophet::expr::parse(text);
  } catch (const prophet::expr::SyntaxError&) {
  }
  return 0;
}
