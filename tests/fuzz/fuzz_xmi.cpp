// libFuzzer harness for the XMI reader.  Arbitrary bytes must only ever
// exit through the structured parse errors (xml::ParseError for
// malformed markup, xmi::XmiError for well-formed XML that is not a
// valid model document) — any crash, hang, unexpected exception type or
// sanitizer report is a finding.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "prophet/xmi/xmi.hpp"
#include "prophet/xml/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    (void)prophet::xmi::from_xml(text);
  } catch (const prophet::xml::ParseError&) {
  } catch (const prophet::xmi::XmiError&) {
  }
  return 0;
}
