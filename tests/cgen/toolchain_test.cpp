// The host-toolchain driver: command construction (the one builder the
// cgen backend and the out-of-process integration tests share), the
// $CXX / $PROPHET_EXTRA_CXX_FLAGS environment contract, the FNV-1a
// cache key function, the content-addressed compile cache, and the
// structured failure paths (compile errors, injected faults).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "prophet/cgen/toolchain.hpp"
#include "prophet/guard/guard.hpp"

namespace cgen = prophet::cgen;

namespace {

/// Scoped environment override: sets (or, with nullptr, unsets) a
/// variable for the test body and restores the previous state after.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      saved_ = old;
      had_value_ = true;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

/// A guaranteed-cold cache directory: gtest's TempDir() persists across
/// runs, so a fixed name would stay warm from the previous invocation.
std::string fresh_cache_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Toolchain, CompilerCommandHonorsCxx) {
  {
    const ScopedEnv cxx("CXX", "my-custom-c++");
    EXPECT_EQ(cgen::compiler_command(), "my-custom-c++");
  }
  {
    const ScopedEnv cxx("CXX", nullptr);
    EXPECT_EQ(cgen::compiler_command(), "g++");
  }
  {
    // Set-but-empty must not produce an empty command.
    const ScopedEnv cxx("CXX", "");
    EXPECT_EQ(cgen::compiler_command(), "g++");
  }
}

TEST(Toolchain, ExtraFlagsPreferTheEnvironment) {
  {
    const ScopedEnv flags("PROPHET_EXTRA_CXX_FLAGS", "-g -Wall");
    EXPECT_EQ(cgen::extra_cxx_flags("-fsanitize=address"), "-g -Wall");
  }
  {
    // Set-but-empty deliberately clears the configure-time fallback —
    // how an unsanitized toolchain builds against a sanitized tree.
    const ScopedEnv flags("PROPHET_EXTRA_CXX_FLAGS", "");
    EXPECT_EQ(cgen::extra_cxx_flags("-fsanitize=address"), "");
  }
  {
    const ScopedEnv flags("PROPHET_EXTRA_CXX_FLAGS", nullptr);
    EXPECT_EQ(cgen::extra_cxx_flags("-fsanitize=address"),
              "-fsanitize=address");
  }
}

TEST(Toolchain, RuntimeArchivesAreInLinkOrder) {
  const auto archives = cgen::runtime_archives("/build");
  ASSERT_EQ(archives.size(), 8u);
  // Dependents precede dependencies: the estimator umbrella first, the
  // leaf modules (guard, xml) last.
  EXPECT_EQ(archives.front(), "/build/src/estimator/libprophet_estimator.a");
  EXPECT_EQ(archives.back(), "/build/src/xml/libprophet_xml.a");
  for (const auto& archive : archives) {
    EXPECT_EQ(archive.rfind("/build/src/", 0), 0u) << archive;
  }
}

TEST(Toolchain, CompileCommandShapes) {
  const ScopedEnv cxx("CXX", nullptr);
  const ScopedEnv flags("PROPHET_EXTRA_CXX_FLAGS", nullptr);
  cgen::CompileSpec spec;
  spec.source_path = "/tmp/in.cpp";
  spec.output_path = "/tmp/out";
  spec.include_dir = "/repo/include";
  spec.archives = {"/build/a.a", "/build/b.a"};
  spec.extra_flags_fallback = "-fno-omit-frame-pointer";

  const std::string executable = cgen::compile_command(spec);
  EXPECT_NE(executable.find("g++ -std=c++20 -O2"), std::string::npos)
      << executable;
  EXPECT_NE(executable.find("-fno-omit-frame-pointer"), std::string::npos);
  EXPECT_NE(executable.find("-I/repo/include"), std::string::npos);
  EXPECT_NE(executable.find("/build/a.a /build/b.a"), std::string::npos);
  EXPECT_EQ(executable.find("-shared"), std::string::npos);
  // stderr folds into stdout so failures carry the compiler's message.
  EXPECT_EQ(executable.rfind("2>&1"), executable.size() - 4);

  spec.shared_object = true;
  spec.optimization = "-O1";
  const std::string shared = cgen::compile_command(spec);
  // The bit-identity contract: position-independent, no FMA contraction,
  // and only the explicit entry points in the dynamic symbol table.
  EXPECT_NE(shared.find("-O1"), std::string::npos);
  EXPECT_NE(shared.find("-fPIC -shared -ffp-contract=off -fvisibility=hidden"),
            std::string::npos)
      << shared;
}

TEST(Toolchain, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors: the offset basis for "", and "a".
  EXPECT_EQ(cgen::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(cgen::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  // Content-addressing needs distinct keys for distinct sources.
  EXPECT_NE(cgen::fnv1a64("int x;"), cgen::fnv1a64("int y;"));
}

TEST(Toolchain, CompileCacheHitsOnTheSecondBuild) {
  cgen::ToolchainOptions options;
  options.cache_dir = fresh_cache_dir("cgen-cache-hit-test");
  const std::string source =
      "extern \"C\" int prophet_cgen_cache_probe() { return 7; }\n";

  const auto first = cgen::compile_shared_object(source, options);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.compile_seconds, 0.0);
  EXPECT_TRUE(std::ifstream(first.object_path).good()) << first.object_path;

  const auto second = cgen::compile_shared_object(source, options);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.object_path, first.object_path);
  EXPECT_EQ(second.compile_seconds, 0.0);

  // A different source must land on a different cached object.
  const auto other = cgen::compile_shared_object(source + "// v2\n", options);
  EXPECT_FALSE(other.cache_hit);
  EXPECT_NE(other.object_path, first.object_path);
}

TEST(Toolchain, CompileFailureThrowsWithToolchainOutput) {
  cgen::ToolchainOptions options;
  options.cache_dir = ::testing::TempDir() + "/cgen-cache-fail-test";
  try {
    (void)cgen::compile_shared_object("int broken(\n", options);
    FAIL() << "expected CgenError";
  } catch (const cgen::CgenError& error) {
    // The compiler's diagnostics ride along for the job-error column.
    EXPECT_NE(std::string(error.what()).find("error"), std::string::npos)
        << error.what();
  }
}

TEST(Toolchain, MissingCompilerDegradesToStructuredError) {
  const ScopedEnv cxx("CXX", "prophet-no-such-compiler-xyzzy");
  cgen::ToolchainOptions options;
  options.cache_dir = ::testing::TempDir() + "/cgen-cache-nocc-test";
  try {
    (void)cgen::compile_shared_object("int ok = 1;\n", options);
    FAIL() << "expected CgenError";
  } catch (const cgen::CgenError& error) {
    EXPECT_NE(std::string(error.what()).find("no usable C++ toolchain"),
              std::string::npos)
        << error.what();
  }
}

TEST(Toolchain, FaultSiteFiresBeforeTheCompile) {
  prophet::guard::FaultPlan plan =
      prophet::guard::FaultPlan::parse("cgen-compile");
  cgen::ToolchainOptions options;
  options.cache_dir = fresh_cache_dir("cgen-cache-fault-test");
  options.fault_plan = &plan;
  try {
    (void)cgen::compile_shared_object("int faulted = 1;\n", options);
    FAIL() << "expected FaultInjected";
  } catch (const prophet::guard::FaultInjected& fault) {
    EXPECT_EQ(fault.site(), "cgen-compile");
  }
}

TEST(Toolchain, CacheHitSkipsTheFaultSite) {
  // Warm the cache without a plan, then inject: a hit never invokes the
  // toolchain, so the fault site must not be visited.
  cgen::ToolchainOptions options;
  options.cache_dir = fresh_cache_dir("cgen-cache-fault-skip-test");
  const std::string source = "extern \"C\" int prophet_cgen_warm() "
                             "{ return 1; }\n";
  const auto warm = cgen::compile_shared_object(source, options);
  ASSERT_FALSE(warm.cache_hit);

  prophet::guard::FaultPlan plan =
      prophet::guard::FaultPlan::parse("cgen-compile");
  options.fault_plan = &plan;
  const auto hit = cgen::compile_shared_object(source, options);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.object_path, warm.object_path);
}

}  // namespace
