// The codegen backend behind the PreparedModel contract: bit-identical
// predictions against the simulator, shared non-null lowering, compile
// cache reuse across prepares, race-free concurrent estimates, the
// guard contract (structured limit trips), and the single-engine
// factory.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/models/builtins.hpp"

namespace cgen = prophet::cgen;
namespace estimator = prophet::estimator;
namespace guard = prophet::guard;

namespace {

prophet::machine::SystemParameters sp(int np, int nodes = 1, int ppn = 1) {
  prophet::machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes;
  params.processors_per_node = ppn;
  return params;
}

estimator::EstimationOptions no_trace() {
  estimator::EstimationOptions options;
  options.collect_trace = false;
  return options;
}

/// EXPECT the two reports carry bit-for-bit identical numbers.
void expect_bit_identical(const estimator::PredictionReport& reference,
                          const estimator::PredictionReport& candidate) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(reference.predicted_time),
            std::bit_cast<std::uint64_t>(candidate.predicted_time))
      << "sim " << reference.predicted_time << " vs codegen "
      << candidate.predicted_time;
  EXPECT_EQ(reference.events, candidate.events);
  EXPECT_EQ(reference.processes, candidate.processes);
  ASSERT_EQ(reference.per_process_finish.size(),
            candidate.per_process_finish.size());
  for (const auto& [pid, finish] : reference.per_process_finish) {
    const auto at = candidate.per_process_finish.find(pid);
    ASSERT_NE(at, candidate.per_process_finish.end()) << "pid " << pid;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(finish),
              std::bit_cast<std::uint64_t>(at->second))
        << "pid " << pid;
  }
}

TEST(CodegenBackend, BitIdenticalToTheSimulator) {
  const auto model = prophet::models::kernel6_detailed_model(32, 4, 1e-8);
  const auto program = prophet::lower::lower(model);
  const auto prepared = cgen::CodegenBackend().prepare(program);
  const auto sim = prophet::analytic::SimulationBackend().prepare(program);
  for (const int np : {1, 2, 4}) {
    expect_bit_identical(sim->estimate(sp(np), no_trace()),
                         prepared->estimate(sp(np), no_trace()));
  }
}

TEST(CodegenBackend, SharesTheLoweringItWasPreparedFrom) {
  const auto program = prophet::lower::lower(prophet::models::sample_model());
  const auto prepared = cgen::CodegenBackend().prepare(program);
  ASSERT_NE(prepared->lowering(), nullptr);
  EXPECT_EQ(prepared->lowering().get(), program.get());
  EXPECT_EQ(prepared->backend_name(), "codegen");
}

TEST(CodegenBackend, SecondPrepareHitsTheCompileCache) {
  cgen::CodegenOptions options;
  options.toolchain.cache_dir =
      ::testing::TempDir() + "/cgen-backend-cache-test";
  // TempDir() persists across runs; the first prepare must be cold.
  std::filesystem::remove_all(options.toolchain.cache_dir);
  const cgen::CodegenBackend backend(options);
  const auto program = prophet::lower::lower(prophet::models::sample_model());

  const auto first = backend.prepare(program);
  const auto* cold = dynamic_cast<const cgen::CodegenPrepared*>(first.get());
  ASSERT_NE(cold, nullptr);
  EXPECT_FALSE(cold->cache_hit());
  EXPECT_GT(cold->prepare_seconds(), 0.0);
  EXPECT_TRUE(std::ifstream(cold->object_path()).good())
      << cold->object_path();

  const auto second = backend.prepare(program);
  const auto* warm = dynamic_cast<const cgen::CodegenPrepared*>(second.get());
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->cache_hit());
  EXPECT_EQ(warm->object_path(), cold->object_path());
  // Both handles stay independently usable.
  expect_bit_identical(first->estimate(sp(2), no_trace()),
                       second->estimate(sp(2), no_trace()));
}

TEST(CodegenBackend, ConcurrentEstimatesAreRaceFree) {
  const auto program = prophet::lower::lower(
      prophet::models::kernel6_model(64, 16, 1e-8));
  const auto prepared = cgen::CodegenBackend().prepare(program);
  const auto expected = prepared->estimate(sp(4, 2, 2), no_trace());

  std::vector<estimator::PredictionReport> reports(8);
  std::vector<std::thread> threads;
  threads.reserve(reports.size());
  for (auto& report : reports) {
    threads.emplace_back([&prepared, &report] {
      report = prepared->estimate(sp(4, 2, 2), no_trace());
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& report : reports) {
    expect_bit_identical(expected, report);
  }
}

TEST(CodegenBackend, LoopTripLimitTripsStructured) {
  const auto program =
      prophet::lower::lower(prophet::models::spin_model(1e6));
  const auto prepared = cgen::CodegenBackend().prepare(program);
  auto options = no_trace();
  options.limits.max_loop_trips = 100;
  try {
    (void)prepared->estimate(sp(1), options);
    FAIL() << "expected ResourceExhausted";
  } catch (const guard::ResourceExhausted& tripped) {
    EXPECT_EQ(tripped.limit(), guard::LimitKind::LoopTrips);
    EXPECT_EQ(tripped.stage(), "cgen-loop");
    EXPECT_GE(tripped.usage().loop_trips, 100u);
  }
}

TEST(CodegenBackend, SimEventLimitTripsStructured) {
  const auto program =
      prophet::lower::lower(prophet::models::spin_model(1e6));
  const auto prepared = cgen::CodegenBackend().prepare(program);
  auto options = no_trace();
  options.limits.max_sim_events = 50;
  EXPECT_THROW((void)prepared->estimate(sp(1), options),
               guard::ResourceExhausted);
}

TEST(CodegenBackend, UnlimitedEstimateMatchesLimitedBelowTheBound) {
  // The guard contract: enforcing generous limits must not perturb the
  // prediction by a single bit.
  const auto program = prophet::lower::lower(prophet::models::sample_model());
  const auto prepared = cgen::CodegenBackend().prepare(program);
  const auto plain = prepared->estimate(sp(2), no_trace());
  auto options = no_trace();
  options.limits.max_sim_events = 1000000;
  options.limits.max_loop_trips = 1000000;
  expect_bit_identical(plain, prepared->estimate(sp(2), options));
}

TEST(CodegenBackend, FactoryCoversEverySingleEngine) {
  EXPECT_EQ(cgen::make_backend(estimator::BackendKind::Simulation)->name(),
            "sim");
  EXPECT_EQ(cgen::make_backend(estimator::BackendKind::Analytic)->name(),
            "analytic");
  EXPECT_EQ(cgen::make_backend(estimator::BackendKind::Codegen)->name(),
            "codegen");
  // Cross-validating kinds select several engines — not a single
  // backend the factory could return.
  EXPECT_THROW((void)cgen::make_backend(estimator::BackendKind::Both),
               std::invalid_argument);
  EXPECT_THROW((void)cgen::make_backend(estimator::BackendKind::All),
               std::invalid_argument);
}

}  // namespace
