// The evaluator emitter: generated translation units are deterministic
// (the compile cache keys on the source bytes), self-describing (the
// three C ABI entry points, visibility-exported), and carry the guard
// contract (generated loops charge the budget) and the bit-identity
// contract (float constants as hexfloat literals).
#include <gtest/gtest.h>

#include <string>

#include "prophet/cgen/abi.hpp"
#include "prophet/cgen/emitter.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/models/builtins.hpp"

namespace cgen = prophet::cgen;

namespace {

std::string emit(const prophet::uml::Model& model) {
  return cgen::emit_evaluator(*prophet::lower::lower(model));
}

TEST(Emitter, EmissionIsDeterministic) {
  // Byte-identical source for repeated lowerings of the same model —
  // the property the content-addressed compile cache stands on.
  const std::string first = emit(prophet::models::sample_model());
  const std::string second = emit(prophet::models::sample_model());
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Emitter, ExportsTheCAbiEntryPoints) {
  const std::string source = emit(prophet::models::sample_model());
  // The unit compiles under -fvisibility=hidden: each entry point must
  // explicitly opt back into the dynamic symbol table.
  EXPECT_NE(source.find("prophet_cgen_abi_version"), std::string::npos);
  EXPECT_NE(source.find("prophet_cgen_run"), std::string::npos);
  EXPECT_NE(source.find("prophet_cgen_free"), std::string::npos);
  EXPECT_NE(source.find("visibility(\"default\")"), std::string::npos);
  // And the version it reports is this build's.
  EXPECT_NE(source.find(std::to_string(cgen::kCgenAbiVersion)),
            std::string::npos);
}

TEST(Emitter, FloatConstantsAreHexfloat) {
  // 1e-8 has no exact decimal representation: round-tripping it through
  // %g would break bit-identity with the VM, so constants are emitted
  // as hexfloat literals.
  const std::string source =
      emit(prophet::models::kernel6_model(64, 16, 1e-8));
  EXPECT_NE(source.find("0x1."), std::string::npos);
}

TEST(Emitter, GeneratedLoopsChargeTheBudget) {
  // The spin model is one big loop; its evaluator must carry the
  // cgen-loop charge site so runaway models trip limits, not hang.
  const std::string source = emit(prophet::models::spin_model(100));
  EXPECT_NE(source.find("cgen-loop"), std::string::npos);
  EXPECT_NE(source.find("charge_loop_trips"), std::string::npos);
}

TEST(Emitter, DistinctModelsEmitDistinctEvaluators) {
  EXPECT_NE(emit(prophet::models::kernel6_model(64, 16, 1e-8)),
            emit(prophet::models::kernel6_model(128, 16, 1e-8)));
}

}  // namespace
