// Trace files: aggregation, serialization round trip, rendering.
#include <gtest/gtest.h>

#include "prophet/trace/trace.hpp"

namespace trace = prophet::trace;

namespace {

trace::Trace sample_trace() {
  trace::Trace t;
  t.add({0.0, 1.0, 0, 0, 1, "A1", trace::EventKind::Compute});
  t.add({1.0, 1.5, 0, 0, 2, "Send", trace::EventKind::Send});
  t.add({0.0, 2.0, 1, 0, 3, "A1", trace::EventKind::Compute});
  t.add({2.0, 2.5, 1, 0, 4, "Recv", trace::EventKind::Receive});
  t.add({0.0, 2.5, 0, 0, 5, "Main", trace::EventKind::Region});
  return t;
}

TEST(Trace, Makespan) {
  EXPECT_DOUBLE_EQ(sample_trace().makespan(), 2.5);
  EXPECT_DOUBLE_EQ(trace::Trace().makespan(), 0.0);
}

TEST(Trace, ByElementAggregation) {
  const auto stats = sample_trace().by_element();
  ASSERT_EQ(stats.count("A1"), 1u);
  EXPECT_EQ(stats.at("A1").count, 2u);
  EXPECT_DOUBLE_EQ(stats.at("A1").total, 3.0);
  EXPECT_DOUBLE_EQ(stats.at("A1").mean(), 1.5);
  EXPECT_DOUBLE_EQ(stats.at("A1").min, 1.0);
  EXPECT_DOUBLE_EQ(stats.at("A1").max, 2.0);
  // Region events are excluded from element aggregation.
  EXPECT_EQ(stats.count("Main"), 0u);
}

TEST(Trace, PerProcessFinishAndBusy) {
  const auto finish = sample_trace().per_process_finish();
  EXPECT_DOUBLE_EQ(finish.at(0), 2.5);
  EXPECT_DOUBLE_EQ(finish.at(1), 2.5);
  const auto busy = sample_trace().per_process_busy();
  EXPECT_DOUBLE_EQ(busy.at(0), 1.0);  // compute only
  EXPECT_DOUBLE_EQ(busy.at(1), 2.0);
}

TEST(Trace, SerializeRoundTrip) {
  const trace::Trace original = sample_trace();
  const trace::Trace reloaded =
      trace::Trace::deserialize(original.serialize());
  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.events()[i];
    const auto& b = reloaded.events()[i];
    EXPECT_DOUBLE_EQ(a.start, b.start);
    EXPECT_DOUBLE_EQ(a.end, b.end);
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_EQ(a.tid, b.tid);
    EXPECT_EQ(a.uid, b.uid);
    EXPECT_EQ(a.element, b.element);
    EXPECT_EQ(a.kind, b.kind);
  }
}

TEST(Trace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.tf";
  sample_trace().save(path);
  const trace::Trace reloaded = trace::Trace::load(path);
  EXPECT_EQ(reloaded.size(), sample_trace().size());
}

TEST(Trace, DeserializeRejectsGarbage) {
  EXPECT_THROW(trace::Trace::deserialize("not a trace"),
               std::runtime_error);
  EXPECT_THROW(
      trace::Trace::deserialize("# prophet-trace 1\n1\t2\tbroken"),
      std::runtime_error);
  EXPECT_THROW(trace::Trace::deserialize(
                   "# prophet-trace 1\n0\t1\t0\t0\t1\tnokind\tA\n"),
               std::runtime_error);
}

TEST(Trace, SummaryMentionsTopElements) {
  const std::string summary = sample_trace().summary();
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_NE(summary.find("A1"), std::string::npos);
  EXPECT_NE(summary.find("p0"), std::string::npos);
}

TEST(Trace, GanttHasOneLanePerProcessThread) {
  const std::string gantt = sample_trace().gantt(40);
  EXPECT_NE(gantt.find("p0.t0"), std::string::npos);
  EXPECT_NE(gantt.find("p1.t0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // compute glyph
}

TEST(Trace, GanttOnEmptyTrace) {
  EXPECT_EQ(trace::Trace().gantt(), "(empty trace)\n");
}

TEST(Trace, GanttOnZeroMakespanTrace) {
  // Instantaneous events (zero-cost compute, immediate barriers) give a
  // zero makespan but a populated trace; it must still render, with
  // every event in the first column, not divide by zero or pretend the
  // trace is empty.
  trace::Trace t;
  t.add({0.0, 0.0, 0, 0, 1, "Instant", trace::EventKind::Compute});
  t.add({0.0, 0.0, 1, 0, 2, "Sync", trace::EventKind::Barrier});
  const std::string gantt = t.gantt(20);
  EXPECT_EQ(gantt.find("(empty trace)"), std::string::npos);
  EXPECT_NE(gantt.find("p0.t0 [#"), std::string::npos);
  EXPECT_NE(gantt.find("p1.t0 [|"), std::string::npos);
}

TEST(Trace, SerializeRoundTripsElementNamesWithSeparators) {
  // Element names are free text chosen by model authors; the tab- and
  // line-structured trace format must round-trip names containing its
  // own separators.
  trace::Trace original;
  original.add({0.0, 1.0, 0, 0, 1, "name with spaces",
                trace::EventKind::Compute});
  original.add({1.0, 2.0, 0, 0, 2, "tab\tseparated", trace::EventKind::Send});
  original.add({2.0, 3.0, 0, 0, 3, "line\nbreak", trace::EventKind::Receive});
  original.add({3.0, 4.0, 0, 0, 4, "back\\slash\r", trace::EventKind::Barrier});
  const trace::Trace reloaded =
      trace::Trace::deserialize(original.serialize());
  ASSERT_EQ(reloaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reloaded.events()[i].element, original.events()[i].element);
    EXPECT_EQ(reloaded.events()[i].kind, original.events()[i].kind);
  }
}

TEST(Trace, CsvExport) {
  const std::string csv = sample_trace().to_csv();
  EXPECT_NE(csv.find("start,end,pid,tid,uid,element,kind"),
            std::string::npos);
  EXPECT_NE(csv.find("A1,compute"), std::string::npos);
}

TEST(Trace, EventKindStrings) {
  EXPECT_EQ(trace::to_string(trace::EventKind::Compute), "compute");
  EXPECT_EQ(trace::event_kind_from_string("recv"),
            trace::EventKind::Receive);
  EXPECT_FALSE(trace::event_kind_from_string("nope").has_value());
}

}  // namespace
