// Machine model: SP validation, XML round trip, process placement, and
// the communication-time model.
#include <gtest/gtest.h>

#include "prophet/machine/machine.hpp"
#include "prophet/xml/parser.hpp"

namespace machine = prophet::machine;
namespace sim = prophet::sim;

namespace {

TEST(SystemParameters, DefaultsValidate) {
  machine::SystemParameters params;
  EXPECT_NO_THROW(params.validate());
}

TEST(SystemParameters, RejectsNonsense) {
  machine::SystemParameters params;
  params.nodes = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.processes = -1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.network_bandwidth = 0;
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = {};
  params.cpu_speed = -2;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(SystemParameters, XmlRoundTrip) {
  machine::SystemParameters params;
  params.nodes = 8;
  params.processors_per_node = 4;
  params.processes = 32;
  params.threads_per_process = 2;
  params.network_latency = 1.5e-5;
  params.network_bandwidth = 2.5e8;
  params.cpu_speed = 1.25;
  const auto reloaded =
      machine::SystemParameters::from_xml(params.to_xml());
  EXPECT_EQ(reloaded.nodes, 8);
  EXPECT_EQ(reloaded.processors_per_node, 4);
  EXPECT_EQ(reloaded.processes, 32);
  EXPECT_EQ(reloaded.threads_per_process, 2);
  EXPECT_DOUBLE_EQ(reloaded.network_latency, 1.5e-5);
  EXPECT_DOUBLE_EQ(reloaded.network_bandwidth, 2.5e8);
  EXPECT_DOUBLE_EQ(reloaded.cpu_speed, 1.25);
}

TEST(SystemParameters, PartialXmlUsesDefaults) {
  const auto params = machine::SystemParameters::from_xml(
      prophet::xml::parse("<sp nodes=\"2\"/>"));
  EXPECT_EQ(params.nodes, 2);
  EXPECT_EQ(params.processes, 1);
  EXPECT_GT(params.network_bandwidth, 0);
}

TEST(SystemParameters, RejectsWrongRoot) {
  EXPECT_THROW((void)machine::SystemParameters::from_xml(
                   prophet::xml::parse("<nope/>")),
               std::invalid_argument);
}

TEST(MachineModel, BlockDistribution) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 2;
  params.processes = 4;
  const machine::MachineModel machine(engine, params);
  EXPECT_EQ(machine.node_of(0), 0);
  EXPECT_EQ(machine.node_of(1), 0);
  EXPECT_EQ(machine.node_of(2), 1);
  EXPECT_EQ(machine.node_of(3), 1);
  EXPECT_THROW((void)machine.node_of(4), std::out_of_range);
  EXPECT_THROW((void)machine.node_of(-1), std::out_of_range);
}

TEST(MachineModel, UnevenDistribution) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 2;
  params.processes = 5;
  const machine::MachineModel machine(engine, params);
  // ceil(5/2) = 3 per node: {0,1,2} -> node0, {3,4} -> node1.
  EXPECT_EQ(machine.node_of(2), 0);
  EXPECT_EQ(machine.node_of(3), 1);
}

TEST(MachineModel, FacilitiesMatchTopology) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 3;
  params.processors_per_node = 4;
  const machine::MachineModel machine(engine, params);
  EXPECT_EQ(machine.node_count(), 3);
  EXPECT_EQ(machine.node(0).servers(), 4);
}

TEST(MachineModel, MessageTimeIntraVsInterNode) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 2;
  params.processes = 4;
  const machine::MachineModel machine(engine, params);
  const double bytes = 1e6;
  const double intra = machine.message_time(0, 1, bytes);
  const double inter = machine.message_time(0, 2, bytes);
  EXPECT_DOUBLE_EQ(intra,
                   params.memory_latency + bytes / params.memory_bandwidth);
  EXPECT_DOUBLE_EQ(inter, params.network_latency +
                              bytes / params.network_bandwidth);
  EXPECT_LT(intra, inter);
}

TEST(MachineModel, MessageTimeScalesWithSize) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 2;
  params.processes = 2;
  const machine::MachineModel machine(engine, params);
  const double small = machine.message_time(0, 1, 1e3);
  const double large = machine.message_time(0, 1, 1e7);
  EXPECT_LT(small, large);
  // Latency dominates tiny messages; bandwidth dominates big ones.
  EXPECT_NEAR(small, params.network_latency, params.network_latency);
  EXPECT_NEAR(large, 1e7 / params.network_bandwidth,
              0.1 * large);
}

TEST(MachineModel, CpuSpeedScalesCompute) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.cpu_speed = 2.0;
  const machine::MachineModel machine(engine, params);
  EXPECT_DOUBLE_EQ(machine.compute_time(1.0), 0.5);
}

TEST(MachineModel, CollectiveRoundUsesNetworkWhenMultiNode) {
  sim::Engine engine;
  machine::SystemParameters single;
  single.nodes = 1;
  machine::SystemParameters multi;
  multi.nodes = 4;
  const machine::MachineModel machine1(engine, single);
  sim::Engine engine2;
  const machine::MachineModel machine4(engine2, multi);
  EXPECT_LT(machine1.collective_round_time(1024),
            machine4.collective_round_time(1024));
}

TEST(MachineModel, UtilizationReportFormat) {
  sim::Engine engine;
  machine::SystemParameters params;
  params.nodes = 2;
  const machine::MachineModel machine(engine, params);
  const std::string report = machine.utilization_report();
  EXPECT_NE(report.find("node0"), std::string::npos);
  EXPECT_NE(report.find("node1"), std::string::npos);
}

}  // namespace
