// Model Checker: every standard rule has a positive (clean model) and a
// negative (violating model) test, plus MCF configuration behaviour.
#include <gtest/gtest.h>

#include "prophet/check/checker.hpp"
#include "prophet/prophet.hpp"
#include "prophet/xml/parser.hpp"

namespace check = prophet::check;
namespace uml = prophet::uml;

namespace {

check::Diagnostics run_check(const uml::Model& model) {
  const check::ModelChecker checker;
  return checker.check(model);
}

bool rule_fired(const check::Diagnostics& diagnostics,
                std::string_view rule) {
  return !diagnostics.from_rule(rule).empty();
}

/// A minimal clean model: initial -> action -> final.
uml::Model clean_model() {
  uml::ModelBuilder mb("Clean");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("0.001");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  return std::move(mb).build();
}

TEST(Checker, CleanModelHasNoFindings) {
  const auto diagnostics = run_check(clean_model());
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
  EXPECT_EQ(diagnostics.warning_count(), 0u) << diagnostics.to_string();
}

TEST(Checker, PaperSampleModelIsClean) {
  const auto diagnostics = run_check(prophet::models::sample_model());
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
}

TEST(Checker, EmptyModelFailsMainDiagramRule) {
  uml::Model model("Empty");
  const auto diagnostics = run_check(model);
  EXPECT_FALSE(diagnostics.ok());
  EXPECT_TRUE(rule_fired(diagnostics, "main-diagram"));
}

TEST(Checker, MissingMainDiagramReference) {
  uml::Model model = clean_model();
  model.set_main_diagram("nonexistent");
  EXPECT_TRUE(rule_fired(run_check(model), "main-diagram"));
}

TEST(Checker, DuplicateIdsDetected) {
  uml::Model model("Dup");
  auto diagram = std::make_unique<uml::ActivityDiagram>("d1", "main");
  diagram->add_node(
      std::make_unique<uml::Node>("x", "I", uml::NodeKind::Initial));
  diagram->add_node(
      std::make_unique<uml::Node>("x", "F", uml::NodeKind::Final));
  diagram->add_edge(std::make_unique<uml::ControlFlow>("e", "x", "x"));
  model.add_diagram(std::move(diagram));
  EXPECT_TRUE(rule_fired(run_check(model), "unique-ids"));
}

TEST(Checker, MissingInitialNode) {
  uml::Model model("NoInit");
  auto diagram = std::make_unique<uml::ActivityDiagram>("d1", "main");
  diagram->add_node(
      std::make_unique<uml::Node>("n1", "A", uml::NodeKind::Action));
  model.add_diagram(std::move(diagram));
  EXPECT_TRUE(rule_fired(run_check(model), "initial-node"));
}

TEST(Checker, TwoInitialNodes) {
  uml::Model model("TwoInit");
  auto diagram = std::make_unique<uml::ActivityDiagram>("d1", "main");
  diagram->add_node(
      std::make_unique<uml::Node>("n1", "I1", uml::NodeKind::Initial));
  diagram->add_node(
      std::make_unique<uml::Node>("n2", "I2", uml::NodeKind::Initial));
  model.add_diagram(std::move(diagram));
  EXPECT_TRUE(rule_fired(run_check(model), "initial-node"));
}

TEST(Checker, InitialWithIncomingEdge) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  d.flow(a, init);  // back edge into initial
  EXPECT_TRUE(
      rule_fired(run_check(std::move(mb).build()), "initial-final-edges"));
}

TEST(Checker, FinalWithOutgoingEdge) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  uml::NodeRef a = d.action("A");
  d.flow(init, fin);
  d.flow(fin, a);
  d.flow(a, fin);
  EXPECT_TRUE(
      rule_fired(run_check(std::move(mb).build()), "initial-final-edges"));
}

TEST(Checker, DanglingEdgeEndpoint) {
  uml::Model model("Dangling");
  auto diagram = std::make_unique<uml::ActivityDiagram>("d1", "main");
  diagram->add_node(
      std::make_unique<uml::Node>("n1", "I", uml::NodeKind::Initial));
  diagram->add_edge(
      std::make_unique<uml::ControlFlow>("f1", "n1", "ghost"));
  model.add_diagram(std::move(diagram));
  EXPECT_TRUE(rule_fired(run_check(model), "edge-endpoints"));
}

TEST(Checker, DisconnectedNodeWarned) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  d.action("Orphan");  // no edges
  const auto diagnostics = run_check(std::move(mb).build());
  EXPECT_TRUE(rule_fired(diagnostics, "connectivity"));
  EXPECT_TRUE(rule_fired(diagnostics, "node-reachable"));
  EXPECT_TRUE(diagnostics.ok());  // warnings only
}

TEST(Checker, DecisionWithUnguardedEdge) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A");
  uml::NodeRef b = d.action("B");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a);  // missing guard
  d.flow(dec, b, "else");
  d.flow(a, fin);
  d.flow(b, fin);
  EXPECT_TRUE(
      rule_fired(run_check(std::move(mb).build()), "decision-guards"));
}

TEST(Checker, DecisionGuardMustParse) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A");
  uml::NodeRef b = d.action("B");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "GV >");
  d.flow(dec, b, "else");
  d.flow(a, fin);
  d.flow(b, fin);
  EXPECT_TRUE(
      rule_fired(run_check(std::move(mb).build()), "decision-guards"));
}

TEST(Checker, DecisionWithoutElseWarned) {
  uml::ModelBuilder mb("M");
  mb.global("GV", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A");
  uml::NodeRef b = d.action("B");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "GV > 0");
  d.flow(dec, b, "GV <= 0");
  d.flow(a, fin);
  d.flow(b, fin);
  const auto diagnostics = run_check(std::move(mb).build());
  EXPECT_TRUE(rule_fired(diagnostics, "decision-guards"));
  EXPECT_TRUE(diagnostics.ok());  // warning only
}

TEST(Checker, GuardOnNonDecisionEdgeWarned) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A");
  uml::NodeRef fin = d.final_node();
  d.flow(init, a);
  d.flow(a, fin, "1 > 0");
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "guard-context"));
}

TEST(Checker, UnknownStereotype) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_stereotype("mystery+");
  EXPECT_TRUE(rule_fired(run_check(model), "stereotype-known"));
}

TEST(Checker, TagTypeMismatch) {
  uml::Model model = clean_model();
  // `time` is declared Real; give it a string.
  model.diagram("d1")->node("n2")->set_tag(
      uml::tag::kTime, uml::TagValue(std::string("fast")));
  EXPECT_TRUE(rule_fired(run_check(model), "tag-conformance"));
}

TEST(Checker, UnknownTagWarned) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_tag("color",
                                           uml::TagValue(std::string("red")));
  const auto diagnostics = run_check(model);
  EXPECT_TRUE(rule_fired(diagnostics, "tag-conformance"));
  EXPECT_TRUE(diagnostics.ok());  // warning only
}

TEST(Checker, MissingRequiredTag) {
  uml::Model model("M");
  model.set_profile(uml::standard_profile());
  auto diagram = std::make_unique<uml::ActivityDiagram>("d1", "main");
  diagram->add_node(
      std::make_unique<uml::Node>("n1", "I", uml::NodeKind::Initial));
  auto send = std::make_unique<uml::Node>("n2", "S", uml::NodeKind::Action);
  send->set_stereotype(std::string(uml::stereo::kSend));
  // dest/size required but absent.
  diagram->add_node(std::move(send));
  diagram->add_node(
      std::make_unique<uml::Node>("n3", "F", uml::NodeKind::Final));
  diagram->add_edge(std::make_unique<uml::ControlFlow>("f1", "n1", "n2"));
  diagram->add_edge(std::make_unique<uml::ControlFlow>("f2", "n2", "n3"));
  model.add_diagram(std::move(diagram));
  EXPECT_TRUE(rule_fired(run_check(model), "tag-conformance"));
}

TEST(Checker, MalformedCostExpression) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_tag(
      uml::tag::kCost, uml::TagValue(std::string("0.001 +")));
  EXPECT_TRUE(rule_fired(run_check(model), "expression-tags"));
}

TEST(Checker, UnknownVariableInCost) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_tag(
      uml::tag::kCost, uml::TagValue(std::string("mystery * 2")));
  EXPECT_TRUE(rule_fired(run_check(model), "expression-visibility"));
}

TEST(Checker, UndefinedCostFunctionCall) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_tag(
      uml::tag::kCost, uml::TagValue(std::string("FMissing()")));
  EXPECT_TRUE(rule_fired(run_check(model), "expression-visibility"));
}

TEST(Checker, SystemParametersAreVisible) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_tag(
      uml::tag::kCost, uml::TagValue(std::string("0.001 * np + pid")));
  EXPECT_TRUE(run_check(model).ok());
}

TEST(Checker, LoopVariableVisibleInsideBody) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::NodeRef binit = body.initial();
  uml::NodeRef w = body.action("W").cost("0.001 * (k + 1)");
  uml::NodeRef bfin = body.final_node();
  body.sequence({binit, w, bfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef loop = main.loop("L", body, "10", "k");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, loop, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  EXPECT_TRUE(run_check(model).ok()) << run_check(model).to_string();
}

TEST(Checker, LoopVariableNotVisibleOutsideBody) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef a = main.action("A").cost("k * 2");  // k undeclared here
  uml::NodeRef fin = main.final_node();
  main.sequence({init, a, fin});
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()),
                         "expression-visibility"));
}

TEST(Checker, CostFunctionBodyMustParse) {
  uml::ModelBuilder mb("M");
  mb.function("F", {}, "1 +");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "cost-functions"));
}

TEST(Checker, CostFunctionCannotUseLocals) {
  uml::ModelBuilder mb("M");
  mb.local("L", uml::VariableType::Real);
  mb.function("F", {}, "L * 2");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "cost-functions"));
}

TEST(Checker, CyclicCostFunctions) {
  uml::ModelBuilder mb("M");
  mb.function("F", {}, "G() + 1");
  mb.function("G", {}, "F() + 1");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "cost-functions"));
}

TEST(Checker, FunctionCompositionAllowed) {
  uml::ModelBuilder mb("M");
  mb.global("P", uml::VariableType::Real, "4");
  mb.function("FA1", {}, "0.001 * P");
  mb.function("FA2", {}, "0.5 * FA1()");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("FA2()");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  EXPECT_TRUE(run_check(std::move(mb).build()).ok());
}

TEST(Checker, UnknownSubdiagram) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef act = d.activity("X", "ghost-diagram");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, act, fin});
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "subdiagrams"));
}

TEST(Checker, CyclicDiagramNesting) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder a = mb.diagram("a");
  uml::DiagramBuilder b = mb.diagram("b");
  uml::NodeRef ainit = a.initial();
  uml::NodeRef to_b = a.activity("ToB", b);
  uml::NodeRef afin = a.final_node();
  a.sequence({ainit, to_b, afin});
  uml::NodeRef binit = b.initial();
  uml::NodeRef to_a = b.activity("ToA", a);
  uml::NodeRef bfin = b.final_node();
  b.sequence({binit, to_a, bfin});
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "subdiagrams"));
}

TEST(Checker, ForkNeedsTwoBranches) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fork = d.fork();
  uml::NodeRef a = d.action("A");
  uml::NodeRef fin = d.final_node();
  d.flow(init, fork);
  d.flow(fork, a);
  d.flow(a, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "fork-join"));
}

TEST(Checker, DuplicateVariableNames) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real);
  mb.global("X", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "variables"));
}

TEST(Checker, VariableShadowsSystemParameter) {
  uml::ModelBuilder mb("M");
  mb.global("pid", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  EXPECT_TRUE(rule_fired(run_check(std::move(mb).build()), "variables"));
}

TEST(Checker, DuplicateElementNamesWarned) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("Same");
  uml::NodeRef b = d.action("Same");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, b, fin});
  const auto diagnostics = run_check(std::move(mb).build());
  EXPECT_TRUE(rule_fired(diagnostics, "element-names"));
  EXPECT_TRUE(diagnostics.ok());
}

// --- MCF configuration ---------------------------------------------------------

TEST(CheckerMcf, DisableRule) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_stereotype("mystery+");
  check::ModelChecker checker;
  checker.configure(prophet::xml::parse(
      "<mcf><rule name=\"stereotype-known\" enabled=\"false\"/></mcf>"));
  EXPECT_FALSE(rule_fired(checker.check(model), "stereotype-known"));
}

TEST(CheckerMcf, OverrideSeverity) {
  uml::Model model = clean_model();
  model.diagram("d1")->node("n2")->set_stereotype("mystery+");
  check::ModelChecker checker;
  checker.configure(prophet::xml::parse(
      "<mcf><rule name=\"stereotype-known\" severity=\"warning\"/></mcf>"));
  const auto diagnostics = checker.check(model);
  EXPECT_TRUE(rule_fired(diagnostics, "stereotype-known"));
  EXPECT_TRUE(diagnostics.ok());  // demoted to warning
}

TEST(CheckerMcf, UnknownRuleReportedAsInfo) {
  check::ModelChecker checker;
  checker.configure(prophet::xml::parse(
      "<mcf><rule name=\"no-such-rule\" enabled=\"false\"/></mcf>"));
  const auto diagnostics = checker.check(clean_model());
  EXPECT_FALSE(diagnostics.from_rule("mcf").empty());
}

TEST(CheckerApi, RuleNamesAndEnabledState) {
  check::ModelChecker checker;
  EXPECT_GE(checker.rule_names().size(), 15u);
  EXPECT_TRUE(checker.is_enabled("unique-ids"));
  EXPECT_TRUE(checker.set_enabled("unique-ids", false));
  EXPECT_FALSE(checker.is_enabled("unique-ids"));
  EXPECT_FALSE(checker.set_enabled("nope", false));
}

TEST(CheckerApi, EmptyCheckerHasNoRules) {
  const check::ModelChecker checker = check::ModelChecker::empty();
  EXPECT_TRUE(checker.rule_names().empty());
  uml::Model model("AnythingGoes");
  EXPECT_TRUE(checker.check(model).ok());
}

TEST(CheckerApi, CustomRule) {
  class NameLengthRule final : public check::Rule {
   public:
    NameLengthRule()
        : check::Rule("name-length", "model names stay short",
                      check::Severity::Warning) {}
    void run(const uml::Model& model, check::RuleContext& ctx) const override {
      if (model.name().size() > 8) {
        ctx.report("model", "name longer than 8 characters");
      }
    }
  };
  check::ModelChecker checker = check::ModelChecker::empty();
  checker.add(std::make_unique<NameLengthRule>());
  uml::Model long_name("AVeryLongModelName");
  EXPECT_TRUE(rule_fired(checker.check(long_name), "name-length"));
}

}  // namespace
