// Backend cross-validation, three ways: for every deterministic built-in
// model, over the parameter grids the paper's evaluation (Sec. 5)
// sweeps, one shared lowering feeds all three engines.  The analytic
// estimator must land inside the 15% acceptance envelope against the
// discrete-event simulator (the deterministic built-ins land far inside
// it: the walk/replay reproduces the simulator's timeline, and the
// node-bottleneck bound reproduces facility serialization exactly for
// SPMD phases); the generated-code evaluator must reproduce the
// simulator bit for bit — no envelope, equality of the underlying
// 64-bit patterns.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"
#include "prophet/uml/model.hpp"

namespace analytic = prophet::analytic;
namespace machine = prophet::machine;

namespace {

constexpr double kEnvelope = 0.15;

double relative_error(double candidate, double reference) {
  if (reference == 0) {
    return candidate == 0 ? 0 : 1;
  }
  return std::abs(candidate - reference) / reference;
}

void expect_cross_validated(const std::string& name,
                            const prophet::uml::Model& model,
                            const machine::SystemParameters& params,
                            double envelope = kEnvelope) {
  const auto scenario = [&] {
    return name + " np=" + std::to_string(params.processes) +
           " nn=" + std::to_string(params.nodes) +
           " ppn=" + std::to_string(params.processors_per_node);
  };
  const auto program = prophet::lower::lower(model);
  prophet::estimator::EstimationOptions no_trace;
  no_trace.collect_trace = false;
  no_trace.collect_machine_report = false;

  const auto reference = analytic::SimulationBackend()
                             .prepare(program)
                             ->estimate(params, no_trace);
  const auto predicted = analytic::AnalyticBackend()
                             .prepare(program)
                             ->estimate(params, no_trace)
                             .predicted_time;
  EXPECT_LT(relative_error(predicted, reference.predicted_time), envelope)
      << scenario() << ": analytic " << predicted << " vs sim "
      << reference.predicted_time;

  // Grid sweeps re-prepare per scenario; the content-addressed compile
  // cache makes every repeat a dlopen of the already-built object.
  const auto compiled = prophet::cgen::CodegenBackend()
                            .prepare(program)
                            ->estimate(params, no_trace);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(compiled.predicted_time),
            std::bit_cast<std::uint64_t>(reference.predicted_time))
      << scenario() << ": codegen " << compiled.predicted_time << " vs sim "
      << reference.predicted_time;
  EXPECT_EQ(compiled.events, reference.events) << scenario();
  EXPECT_EQ(compiled.processes, reference.processes) << scenario();
}

machine::SystemParameters sp(int np, int nodes, int ppn) {
  machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes;
  params.processors_per_node = ppn;
  return params;
}

TEST(BackendCrossValidation, SampleModelWithinEnvelope) {
  const auto model = prophet::models::sample_model();
  for (const int np : {1, 2, 4, 8}) {
    for (const int nodes : {1, 2}) {
      for (const int ppn : {1, 2}) {
        expect_cross_validated("@sample", model, sp(np, nodes, ppn));
      }
    }
  }
}

TEST(BackendCrossValidation, Kernel6WithinEnvelope) {
  const auto model = prophet::models::kernel6_model(64, 16, 1e-8);
  for (const int np : {1, 2, 4, 8}) {
    for (const int nodes : {1, 2}) {
      for (const int ppn : {1, 2}) {
        expect_cross_validated("@kernel6", model, sp(np, nodes, ppn));
      }
    }
  }
}

TEST(BackendCrossValidation, DetailedKernel6WithinEnvelope) {
  const auto model = prophet::models::kernel6_detailed_model(32, 4, 1e-8);
  for (const int np : {1, 4}) {
    expect_cross_validated("@kernel6-detailed", model, sp(np, 1, 1));
  }
}

TEST(BackendCrossValidation, PingPongWithinEnvelope) {
  // Two ranks; intra-node (nodes=1) and inter-node (nodes=2) transfers.
  const auto model = prophet::models::pingpong_model(1024, 8);
  expect_cross_validated("@pingpong", model, sp(2, 1, 1));
  expect_cross_validated("@pingpong", model, sp(2, 1, 2));
  expect_cross_validated("@pingpong", model, sp(2, 2, 1));
  const auto large = prophet::models::pingpong_model(1 << 20, 4);
  expect_cross_validated("@pingpong-1MiB", large, sp(2, 2, 1));
}

TEST(BackendCrossValidation, EveryRegisteredModelOverItsDefaultGrid) {
  // The registry contract: every built-in workload cross-validates over
  // its own default grid — the same sweep CI gates with
  // `prophetc sweep @name --backend=all --max-rel-error`.  A new
  // registry entry buys this coverage automatically, three engines
  // included.
  for (const auto& entry : prophet::models::Registry::builtin().entries()) {
    const auto model = entry.make();
    const auto grid = prophet::pipeline::ScenarioGrid::parse(
        entry.default_grid, entry.default_params);
    for (const auto& params : grid.expand()) {
      expect_cross_validated("@" + entry.name, model, params);
    }
  }
}

TEST(BackendCrossValidation, RandomStructuredModelsWithinEnvelope) {
  // Property-style: seeded random structured models (no communication,
  // guarded decisions, nested activities and loops) must stay inside the
  // envelope too — they exercise fragments, locals and pid-dependence.
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    const auto model = prophet::models::random_model(seed, 24);
    for (const int np : {1, 3, 8}) {
      expect_cross_validated("random" + std::to_string(seed), model,
                             sp(np, 2, 1));
    }
  }
}

}  // namespace
