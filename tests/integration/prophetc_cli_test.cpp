// prophetc <-> registry parity: the CLI's help text, `models` listing and
// "@" resolution must all come from models::Registry::builtin() — one
// source of truth, asserted out-of-process against the real binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "prophet/models/registry.hpp"

namespace {

struct CommandResult {
  int status = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  result.status = pclose(pipe);
  return result;
}

std::string prophetc() { return std::string(PROPHET_BINARY_DIR) + "/prophetc"; }

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(ProphetcCli, ModelsNamesMatchesRegistry) {
  const auto result = run_command(prophetc() + " models --names");
  ASSERT_EQ(result.status, 0) << result.output;
  EXPECT_EQ(lines_of(result.output),
            prophet::models::Registry::builtin().names());
}

TEST(ProphetcCli, ModelsListingCoversEveryEntry) {
  const auto result = run_command(prophetc() + " models");
  ASSERT_EQ(result.status, 0) << result.output;
  for (const auto& entry : prophet::models::Registry::builtin().entries()) {
    if (entry.hidden) {
      // Hidden diagnostics (e.g. the runaway @spin) resolve by exact
      // reference but stay out of the catalogue.
      EXPECT_EQ(result.output.find("@" + entry.name), std::string::npos)
          << "listing leaks hidden @" << entry.name;
      continue;
    }
    EXPECT_NE(result.output.find("@" + entry.name), std::string::npos)
        << "listing misses @" << entry.name;
    EXPECT_NE(result.output.find(entry.default_grid), std::string::npos)
        << "listing misses the grid of @" << entry.name;
  }
}

TEST(ProphetcCli, UsageEnumeratesRegistryModels) {
  // No arguments -> usage on stderr, which must carry the registry's own
  // available() list (never a hardcoded copy).
  const auto result = run_command(prophetc());
  EXPECT_NE(result.status, 0);
  EXPECT_NE(
      result.output.find(prophet::models::Registry::builtin().available()),
      std::string::npos)
      << result.output;
}

TEST(ProphetcCli, UnknownModelErrorEnumeratesRegistryModels) {
  const auto result = run_command(prophetc() + " sweep @doesnotexist");
  EXPECT_NE(result.status, 0);
  EXPECT_NE(
      result.output.find(prophet::models::Registry::builtin().available()),
      std::string::npos)
      << result.output;
}

TEST(ProphetcCli, ModelsGridPrintsTheDefaultGrid) {
  for (const auto& entry : prophet::models::Registry::builtin().entries()) {
    const auto result =
        run_command(prophetc() + " models --grid '@" + entry.name + "'");
    ASSERT_EQ(result.status, 0) << result.output;
    EXPECT_EQ(result.output, entry.default_grid + "\n") << entry.name;
  }
}

TEST(ProphetcCli, KnobReferenceSweeps) {
  const auto result = run_command(
      prophetc() +
      " sweep '@kernel6(n=8, m=1)' --grid np=1,2 --backend analytic");
  EXPECT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("ok 2 / failed 0"), std::string::npos)
      << result.output;
}

TEST(ProphetcCli, SweepExpandsGridsOverRegistryDefaults) {
  // Without --sp, a reference's grid uses the entry's default params:
  // @pingpong needs np = 2, and "nodes=1,2" does not set it.
  const auto result = run_command(
      prophetc() + " sweep @pingpong --grid nodes=1,2 --backend analytic");
  EXPECT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("ok 2 / failed 0"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("np=2"), std::string::npos) << result.output;
}

TEST(ProphetcCli, EstimateResolvesRegistryDefaults) {
  // @pingpong needs np = 2; the registry's default params supply it.
  const auto result = run_command(prophetc() + " estimate @pingpong");
  EXPECT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("processes:      2"), std::string::npos)
      << result.output;
}

TEST(ProphetcCli, EstimateTimingsReportsExpressionCompileSplit) {
  // Every backend reports the prepare/evaluate split with the
  // expression-compile share of prepare, plus a lowering-counts line
  // derived from the shared lower::ModelProgram.  Because the counts
  // come from one lowering layer, every backend mode must report the
  // same "lowering ..." suffix for the same model.
  std::set<std::string> lowering_counts;
  for (const char* backend : {"sim", "analytic", "both"}) {
    const auto result = run_command(prophetc() + " estimate @kernel6 " +
                                    "--backend " + backend + " --timings");
    ASSERT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("-- timings --"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("expr compile"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("programs)"), std::string::npos)
        << result.output;
    if (std::string(backend) != "sim") {
      EXPECT_NE(result.output.find("analytic: prepare"), std::string::npos)
          << result.output;
      EXPECT_NE(result.output.find("analytic: lowering"), std::string::npos)
          << result.output;
    }
    if (std::string(backend) != "analytic") {
      EXPECT_NE(result.output.find("sim: prepare"), std::string::npos)
          << result.output;
      EXPECT_NE(result.output.find("sim: lowering"), std::string::npos)
          << result.output;
    }
    for (const auto& line : lines_of(result.output)) {
      const auto at = line.find(": lowering ");
      if (at != std::string::npos) {
        lowering_counts.insert(line.substr(at));
      }
    }
  }
  // sim, analytic and both produced four lowering lines between them;
  // all must carry identical counts (nodes, slots, bytecode bytes).
  EXPECT_EQ(lowering_counts.size(), 1u)
      << "backends disagree on lowering counts";
  // The timed sim path must stay bit-identical to the default path.
  const auto timed = run_command(prophetc() + " estimate @kernel6 --timings");
  const auto plain = run_command(prophetc() + " estimate @kernel6");
  ASSERT_EQ(timed.status, 0) << timed.output;
  const auto timed_lines = lines_of(timed.output);
  ASSERT_FALSE(timed_lines.empty());
  EXPECT_NE(timed.output.find(lines_of(plain.output)[0]), std::string::npos)
      << "predicted time differs between --timings and default paths:\n"
      << timed.output << "\nvs\n"
      << plain.output;
}

}  // namespace
