// Out-of-process contracts of the observability exports: --metrics JSON
// schema, --trace-json Chrome trace shape, printed-number == exported-
// number, instrumentation bit-identity and the --progress heartbeat —
// all asserted against the real prophetc binary.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "../obs/mini_json.hpp"

namespace {

struct CommandResult {
  int status = -1;
  std::string output;  // stdout + stderr interleaved
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    result.output += buffer;
  }
  result.status = pclose(pipe);
  return result;
}

std::string prophetc() { return std::string(PROPHET_BINARY_DIR) + "/prophetc"; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::uint64_t counter(const mini_json::Value& doc, const std::string& name) {
  return static_cast<std::uint64_t>(doc.at("counters").at(name).number());
}

TEST(ObservabilityCli, SweepMetricsJsonHasSchemaAndLiveCounters) {
  const std::string path = temp_path("sweep_metrics.json");
  const auto result =
      run_command(prophetc() + " sweep @kernel6 --backend both --metrics " +
                  path);
  ASSERT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("metrics written to"), std::string::npos);

  const auto doc = mini_json::parse(slurp(path));
  EXPECT_EQ(doc.at("schema").str(), "prophet-metrics-1");
  ASSERT_TRUE(doc.at("counters").is_object());
  ASSERT_TRUE(doc.at("gauges").is_object());
  ASSERT_TRUE(doc.at("timers").is_object());
  // The pipeline ran: job accounting, the compiled-model cache, both
  // engines and the shared lowering all counted.
  EXPECT_GT(counter(doc, "batch.jobs"), 0U);
  EXPECT_GT(counter(doc, "batch.cache_hits"), 0U);
  EXPECT_GT(counter(doc, "expr.instructions"), 0U);
  EXPECT_GT(counter(doc, "sim.runs"), 0U);
  EXPECT_GT(counter(doc, "analytic.runs"), 0U);
  EXPECT_GT(counter(doc, "lower.nodes"), 0U);
  EXPECT_GT(doc.at("timers").at("batch.wall_seconds").number(), 0.0);
}

TEST(ObservabilityCli, EstimateTraceJsonLanesMatchProcessCount) {
  const std::string path = temp_path("estimate_trace.json");
  const auto result = run_command(prophetc() +
                                  " estimate @kernel6 --np 4 --backend both "
                                  "--trace-json " +
                                  path);
  ASSERT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("trace json written to"), std::string::npos);

  const auto doc = mini_json::parse(slurp(path));
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const auto& events = doc.at("traceEvents").array();
  ASSERT_FALSE(events.empty());
  double last_ts = -1.0;
  std::set<int> host_tids;
  std::set<int> sim_pids;
  for (const auto& entry : events) {
    if (entry.at("ph").str() == "M") {
      continue;
    }
    ASSERT_EQ(entry.at("ph").str(), "X");
    // Spans are emitted sorted by timestamp so Perfetto streams them.
    EXPECT_GE(entry.at("ts").number(), last_ts);
    last_ts = entry.at("ts").number();
    EXPECT_GE(entry.at("dur").number(), 0.0);
    const int pid = static_cast<int>(entry.at("pid").number());
    if (pid == 0) {
      host_tids.insert(static_cast<int>(entry.at("tid").number()));
    } else {
      sim_pids.insert(pid);
    }
  }
  // Host spans live on pid 0 (parse/prepare/estimate stages).
  EXPECT_FALSE(host_tids.empty());
  // Simulated lanes: exactly one chrome process per modeled rank.
  EXPECT_EQ(sim_pids, (std::set<int>{1000, 1001, 1002, 1003}));
}

TEST(ObservabilityCli, TimingsNumbersEqualMetricsJson) {
  const std::string path = temp_path("timings_metrics.json");
  const auto result = run_command(prophetc() +
                                  " estimate @kernel6 --backend both "
                                  "--timings --metrics " +
                                  path);
  ASSERT_EQ(result.status, 0) << result.output;
  const auto doc = mini_json::parse(slurp(path));
  // The printed lowering line is formatted from the same registry cells
  // the JSON exports; reconstruct it from the JSON and demand a match.
  const std::string lowering =
      "lowering " + std::to_string(counter(doc, "lower.nodes")) + " nodes, " +
      std::to_string(counter(doc, "lower.slots")) + " slots, " +
      std::to_string(counter(doc, "lower.bytecode_bytes")) +
      " bytecode bytes";
  EXPECT_NE(result.output.find("sim: " + lowering), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("analytic: " + lowering), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(
                std::to_string(counter(doc, "lower.expr_programs")) +
                " programs)"),
            std::string::npos)
      << result.output;
  // Host stage timers exported for both backends.
  EXPECT_GE(doc.at("timers").at("host.sim.estimate_seconds").number(), 0.0);
  EXPECT_GE(doc.at("timers").at("host.analytic.estimate_seconds").number(),
            0.0);
}

TEST(ObservabilityCli, SweepSummaryCountsEqualMetricsJson) {
  const std::string path = temp_path("summary_metrics.json");
  const auto result = run_command(
      prophetc() + " sweep @pingpong --backend both --metrics " + path);
  ASSERT_EQ(result.status, 0) << result.output;
  const auto doc = mini_json::parse(slurp(path));
  const std::string jobs = std::to_string(counter(doc, "batch.jobs"));
  EXPECT_NE(result.output.find("scenario sweep: " + jobs + " job(s)"),
            std::string::npos)
      << result.output;
  const std::string tally =
      "ok " + std::to_string(counter(doc, "batch.jobs_ok")) + " / failed " +
      std::to_string(counter(doc, "batch.jobs_failed"));
  EXPECT_NE(result.output.find(tally), std::string::npos) << result.output;
  const std::string cache =
      "prepared " + std::to_string(counter(doc, "batch.models_prepared")) +
      " model(s)";
  EXPECT_NE(result.output.find(cache), std::string::npos) << result.output;
}

TEST(ObservabilityCli, InstrumentationDoesNotChangePredictions) {
  // The deterministic CSV columns (1-16: ids, parameters, predictions,
  // event counts) must be byte-identical with and without --metrics /
  // --trace-json; only the host-time columns may move.
  const std::string csv_plain = temp_path("sweep_plain.csv");
  const std::string csv_instrumented = temp_path("sweep_instr.csv");
  const std::string base = prophetc() +
                           " sweep @kernel6 --backend both --grid np=1..4 "
                           "--seed 42 --csv ";
  const auto plain = run_command(base + csv_plain);
  ASSERT_EQ(plain.status, 0) << plain.output;
  const auto instrumented = run_command(
      base + csv_instrumented + " --metrics " + temp_path("instr_m.json") +
      " --trace-json " + temp_path("instr_t.json"));
  ASSERT_EQ(instrumented.status, 0) << instrumented.output;

  const auto deterministic_prefix = [](const std::string& text) {
    std::vector<std::string> rows;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      std::size_t pos = 0;
      for (int field = 0; field < 16 && pos != std::string::npos; ++field) {
        pos = line.find(',', pos + 1);
      }
      rows.push_back(line.substr(0, pos));
    }
    return rows;
  };
  const auto a = deterministic_prefix(slurp(csv_plain));
  const auto b = deterministic_prefix(slurp(csv_instrumented));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 1U);  // header + jobs
  EXPECT_EQ(a, b);
}

TEST(ObservabilityCli, ProgressHeartbeatOnStderr) {
  const auto result =
      run_command(prophetc() + " sweep @pingpong --backend both --progress");
  ASSERT_EQ(result.status, 0) << result.output;
  // The guaranteed final heartbeat: every job accounted for, with the
  // cross-validation worst-error field.
  EXPECT_NE(result.output.find("sweep: "), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("worst rel err"), std::string::npos)
      << result.output;
}

}  // namespace
