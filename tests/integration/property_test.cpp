// Property-based tests over randomized structured models: for every seed,
// the model must pass the checker, round-trip through XMI, interpret
// deterministically, and transform without error; for a sample of seeds
// the generated C++ is compiled and must predict exactly what the
// interpreter predicts (the differential oracle for the Fig. 5
// transformation).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "prophet/interp/interpreter.hpp"
#include "prophet/prophet.hpp"
#include "prophet/traverse/handlers.hpp"
#include "prophet/xmi/xmi.hpp"

namespace {

using prophet::Prophet;

prophet::machine::SystemParameters diff_params() {
  prophet::machine::SystemParameters params;
  params.processes = 3;
  params.nodes = 3;
  return params;
}

class RandomModelProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomModelProperty, PassesChecker) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const auto diagnostics = prophet.check();
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
}

TEST_P(RandomModelProperty, XmiRoundTrips) {
  const prophet::uml::Model model =
      prophet::models::random_model(GetParam());
  const prophet::uml::Model reloaded =
      prophet::xmi::from_xml(prophet::xmi::to_xml(model));
  EXPECT_TRUE(prophet::xmi::equivalent(model, reloaded));
}

TEST_P(RandomModelProperty, InterpretsDeterministically) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const auto first = prophet.estimate(diff_params());
  const auto second = prophet.estimate(diff_params());
  EXPECT_DOUBLE_EQ(first.predicted_time, second.predicted_time);
  EXPECT_EQ(first.events, second.events);
  EXPECT_GT(first.predicted_time, 0.0);
}

TEST_P(RandomModelProperty, TransformsWithoutError) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const std::string cpp = prophet.transform();
  EXPECT_NE(cpp.find("prophet_model"), std::string::npos);
  EXPECT_NE(cpp.find("prophet_program"), std::string::npos);
}

TEST_P(RandomModelProperty, GenerationIsDeterministic) {
  const auto a = prophet::models::random_model(GetParam());
  const auto b = prophet::models::random_model(GetParam());
  EXPECT_TRUE(prophet::xmi::equivalent(a, b));
}

TEST_P(RandomModelProperty, TraverserXmlHandlerMatchesXmiWriter) {
  // The ContentHandler-based XML generator (the Fig. 6 extension point)
  // must produce a document the XMI reader accepts and that reloads to an
  // equivalent model.
  const prophet::uml::Model model =
      prophet::models::random_model(GetParam());
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::XmlContentHandler handler;
  prophet::traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  const prophet::uml::Model reloaded =
      prophet::xmi::from_document(handler.document());
  EXPECT_TRUE(prophet::xmi::equivalent(model, reloaded));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u, 144u, 233u));

/// Differential oracle: compile the transformer's output for a random
/// model and compare its prediction with the interpreter's, exactly.
class RandomModelDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelDifferential, GeneratedCodeMatchesInterpreter) {
  const std::uint64_t seed = GetParam();
  const Prophet prophet(prophet::models::random_model(seed, 24));
  ASSERT_TRUE(prophet.check().ok()) << prophet.check().to_string();

  prophet::codegen::TransformOptions options;
  options.emit_main = true;
  const std::string cpp = prophet.transform(options);

  const std::string dir = ::testing::TempDir();
  const std::string source =
      dir + "/prophet_random_" + std::to_string(seed) + ".cpp";
  const std::string binary =
      dir + "/prophet_random_" + std::to_string(seed);
  {
    std::ofstream out(source);
    ASSERT_TRUE(out.is_open());
    out << cpp;
  }
  const std::string command =
      std::string("g++ -std=c++20 -O1 " PROPHET_EXTRA_CXX_FLAGS " -I") +
      PROPHET_SOURCE_DIR +
      "/include " + source + " " + PROPHET_BINARY_DIR +
      "/src/estimator/libprophet_estimator.a " + PROPHET_BINARY_DIR +
      "/src/workload/libprophet_workload.a " + PROPHET_BINARY_DIR +
      "/src/machine/libprophet_machine.a " + PROPHET_BINARY_DIR +
      "/src/obs/libprophet_obs.a " + PROPHET_BINARY_DIR +
      "/src/trace/libprophet_trace.a " + PROPHET_BINARY_DIR +
      "/src/sim/libprophet_sim.a " + PROPHET_BINARY_DIR +
      "/src/guard/libprophet_guard.a " + PROPHET_BINARY_DIR +
      "/src/xml/libprophet_xml.a -o " + binary + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    output += buffer;
  }
  ASSERT_EQ(pclose(pipe), 0) << "compile failed:\n"
                             << output << "\n--- source ---\n"
                             << cpp;

  const auto params = diff_params();
  const std::string run = binary + " " + std::to_string(params.processes) +
                          " " + std::to_string(params.nodes) + " " +
                          std::to_string(params.processors_per_node) + " " +
                          std::to_string(params.threads_per_process);
  pipe = popen(run.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  output.clear();
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    output += buffer;
  }
  ASSERT_EQ(pclose(pipe), 0) << output;
  const auto pos = output.find("predicted time:");
  ASSERT_NE(pos, std::string::npos) << output;
  const double generated = std::strtod(output.c_str() + pos + 15, nullptr);

  const double interpreted =
      prophet.estimate(params).predicted_time;
  EXPECT_NEAR(generated, interpreted, 1e-9)
      << "seed " << seed << "\n"
      << output;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelDifferential,
                         ::testing::Values(7u, 42u, 1234u));

/// Statistics handler sanity over random models.
TEST(StatisticsHandler, CountsMatchModel) {
  const prophet::uml::Model model = prophet::models::random_model(99, 30);
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::StatisticsHandler handler;
  prophet::traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  std::size_t nodes = 0;
  std::size_t edges = 0;
  for (const auto& diagram : model.diagrams()) {
    nodes += diagram->node_count();
    edges += diagram->edge_count();
  }
  EXPECT_EQ(handler.diagrams(), model.diagrams().size());
  EXPECT_EQ(handler.nodes(), nodes);
  EXPECT_EQ(handler.edges(), edges);
  EXPECT_GT(handler.by_stereotype().at("action+"), 0u);
  EXPECT_FALSE(handler.report().empty());
}

}  // namespace
