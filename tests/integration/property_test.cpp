// Property-based tests over randomized structured models: for every seed,
// the model must pass the checker, round-trip through XMI, interpret
// deterministically, and transform without error; for a sample of seeds
// the generated C++ is compiled and must predict exactly what the
// interpreter predicts (the differential oracle for the Fig. 5
// transformation).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "prophet/analytic/backend.hpp"
#include "prophet/cgen/backend.hpp"
#include "prophet/cgen/toolchain.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/prophet.hpp"
#include "prophet/traverse/handlers.hpp"
#include "prophet/xmi/xmi.hpp"

namespace {

using prophet::Prophet;

prophet::machine::SystemParameters diff_params() {
  prophet::machine::SystemParameters params;
  params.processes = 3;
  params.nodes = 3;
  return params;
}

class RandomModelProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomModelProperty, PassesChecker) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const auto diagnostics = prophet.check();
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
}

TEST_P(RandomModelProperty, XmiRoundTrips) {
  const prophet::uml::Model model =
      prophet::models::random_model(GetParam());
  const prophet::uml::Model reloaded =
      prophet::xmi::from_xml(prophet::xmi::to_xml(model));
  EXPECT_TRUE(prophet::xmi::equivalent(model, reloaded));
}

TEST_P(RandomModelProperty, InterpretsDeterministically) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const auto first = prophet.estimate(diff_params());
  const auto second = prophet.estimate(diff_params());
  EXPECT_DOUBLE_EQ(first.predicted_time, second.predicted_time);
  EXPECT_EQ(first.events, second.events);
  EXPECT_GT(first.predicted_time, 0.0);
}

TEST_P(RandomModelProperty, TransformsWithoutError) {
  const Prophet prophet(prophet::models::random_model(GetParam()));
  const std::string cpp = prophet.transform();
  EXPECT_NE(cpp.find("prophet_model"), std::string::npos);
  EXPECT_NE(cpp.find("prophet_program"), std::string::npos);
}

TEST_P(RandomModelProperty, GenerationIsDeterministic) {
  const auto a = prophet::models::random_model(GetParam());
  const auto b = prophet::models::random_model(GetParam());
  EXPECT_TRUE(prophet::xmi::equivalent(a, b));
}

TEST_P(RandomModelProperty, TraverserXmlHandlerMatchesXmiWriter) {
  // The ContentHandler-based XML generator (the Fig. 6 extension point)
  // must produce a document the XMI reader accepts and that reloads to an
  // equivalent model.
  const prophet::uml::Model model =
      prophet::models::random_model(GetParam());
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::XmlContentHandler handler;
  prophet::traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  const prophet::uml::Model reloaded =
      prophet::xmi::from_document(handler.document());
  EXPECT_TRUE(prophet::xmi::equivalent(model, reloaded));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u, 144u, 233u));

/// Differential oracle: compile the transformer's output for a random
/// model and compare its prediction with the interpreter's, exactly.
class RandomModelDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModelDifferential, GeneratedCodeMatchesInterpreter) {
  const std::uint64_t seed = GetParam();
  const Prophet prophet(prophet::models::random_model(seed, 24));
  ASSERT_TRUE(prophet.check().ok()) << prophet.check().to_string();

  prophet::codegen::TransformOptions options;
  options.emit_main = true;
  const std::string cpp = prophet.transform(options);

  const std::string dir = ::testing::TempDir();
  const std::string source =
      dir + "/prophet_random_" + std::to_string(seed) + ".cpp";
  const std::string binary =
      dir + "/prophet_random_" + std::to_string(seed);
  {
    std::ofstream out(source);
    ASSERT_TRUE(out.is_open());
    out << cpp;
  }
  // The cgen module's command builder honors $CXX and
  // $PROPHET_EXTRA_CXX_FLAGS here exactly as in the codegen backend.
  prophet::cgen::CompileSpec spec;
  spec.source_path = source;
  spec.output_path = binary;
  spec.include_dir = std::string(PROPHET_SOURCE_DIR) + "/include";
  spec.archives = prophet::cgen::runtime_archives(PROPHET_BINARY_DIR);
  spec.optimization = "-O1";
  spec.extra_flags_fallback = PROPHET_EXTRA_CXX_FLAGS;
  const std::string command = prophet::cgen::compile_command(spec);
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    output += buffer;
  }
  ASSERT_EQ(pclose(pipe), 0) << "compile failed:\n"
                             << output << "\n--- source ---\n"
                             << cpp;

  const auto params = diff_params();
  const std::string run = binary + " " + std::to_string(params.processes) +
                          " " + std::to_string(params.nodes) + " " +
                          std::to_string(params.processors_per_node) + " " +
                          std::to_string(params.threads_per_process);
  pipe = popen(run.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  output.clear();
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    output += buffer;
  }
  ASSERT_EQ(pclose(pipe), 0) << output;
  const auto pos = output.find("predicted time:");
  ASSERT_NE(pos, std::string::npos) << output;
  const double generated = std::strtod(output.c_str() + pos + 15, nullptr);

  const double interpreted =
      prophet.estimate(params).predicted_time;
  EXPECT_NEAR(generated, interpreted, 1e-9)
      << "seed " << seed << "\n"
      << output;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelDifferential,
                         ::testing::Values(7u, 42u, 1234u));

/// In-process three-backend differential: every random structured model
/// is lowered once and estimated through the simulator, the generated
/// native evaluator and the analytic estimator.  Sim and codegen must
/// agree to the bit; analytic stays inside the cross-validation
/// envelope.  Failures log the seed for replay.
class RandomModelThreeWay : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomModelThreeWay, BackendsAgreeFromOneLowering) {
  const std::uint64_t seed = GetParam();
  const auto model = prophet::models::random_model(seed, 24);
  const auto program = prophet::lower::lower(model);
  // The same parameter point the cross-validation suite pins the
  // analytic envelope at for these seeds.
  prophet::machine::SystemParameters params;
  params.processes = 3;
  params.nodes = 2;
  prophet::estimator::EstimationOptions options;
  options.collect_trace = false;
  options.collect_machine_report = false;

  const auto sim = prophet::analytic::SimulationBackend()
                       .prepare(program)
                       ->estimate(params, options);
  const auto compiled = prophet::cgen::CodegenBackend()
                            .prepare(program)
                            ->estimate(params, options);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(sim.predicted_time),
            std::bit_cast<std::uint64_t>(compiled.predicted_time))
      << "seed " << seed << ": sim " << sim.predicted_time << " vs codegen "
      << compiled.predicted_time;
  EXPECT_EQ(sim.events, compiled.events) << "seed " << seed;
  EXPECT_EQ(sim.processes, compiled.processes) << "seed " << seed;
  for (const auto& [pid, finish] : sim.per_process_finish) {
    const auto at = compiled.per_process_finish.find(pid);
    ASSERT_NE(at, compiled.per_process_finish.end())
        << "seed " << seed << " pid " << pid;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(finish),
              std::bit_cast<std::uint64_t>(at->second))
        << "seed " << seed << " pid " << pid;
  }

  const auto analytic = prophet::analytic::AnalyticBackend()
                            .prepare(program)
                            ->estimate(params, options);
  ASSERT_GT(sim.predicted_time, 0.0) << "seed " << seed;
  EXPECT_LT(std::abs(analytic.predicted_time - sim.predicted_time) /
                sim.predicted_time,
            0.15)
      << "seed " << seed << ": analytic " << analytic.predicted_time
      << " vs sim " << sim.predicted_time;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelThreeWay,
                         ::testing::Values(1u, 7u, 42u, 1234u));

/// Statistics handler sanity over random models.
TEST(StatisticsHandler, CountsMatchModel) {
  const prophet::uml::Model model = prophet::models::random_model(99, 30);
  prophet::traverse::DepthFirstNavigator navigator;
  prophet::traverse::StatisticsHandler handler;
  prophet::traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  std::size_t nodes = 0;
  std::size_t edges = 0;
  for (const auto& diagram : model.diagrams()) {
    nodes += diagram->node_count();
    edges += diagram->edge_count();
  }
  EXPECT_EQ(handler.diagrams(), model.diagrams().size());
  EXPECT_EQ(handler.nodes(), nodes);
  EXPECT_EQ(handler.edges(), edges);
  EXPECT_GT(handler.by_stereotype().at("action+"), 0u);
  EXPECT_FALSE(handler.report().empty());
}

}  // namespace
