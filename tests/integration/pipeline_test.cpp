// End-to-end pipeline tests over the paper's Sec. 4 sample model:
// build (Fig. 7) -> check -> XMI round-trip -> estimate by interpretation
// -> transform to C++ (Fig. 5/8) -> compile the generated code with a real
// C++ compiler -> run it -> compare against the interpreter.
//
// The compile-and-run test is the strongest statement of the paper's
// pipeline: the generated C++ representation is a real, machine-efficient
// artifact, not a string.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "prophet/cgen/toolchain.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/prophet.hpp"
#include "prophet/xmi/xmi.hpp"

namespace {

using prophet::Prophet;

prophet::machine::SystemParameters small_machine() {
  prophet::machine::SystemParameters params;
  params.nodes = 2;
  params.processors_per_node = 2;
  params.processes = 4;
  return params;
}

TEST(Pipeline, SampleModelPassesModelChecker) {
  const Prophet prophet(prophet::models::sample_model());
  const auto diagnostics = prophet.check();
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
}

TEST(Pipeline, SampleModelEstimateMatchesHandComputation) {
  const Prophet prophet(prophet::models::sample_model());
  prophet::machine::SystemParameters params;  // 1 process, 1 node
  const auto report = prophet.estimate(params);
  // The code fragment sets GV = 3, P = 16 before A1 executes, so the
  // [GV > 0] branch runs SA.  With pid = 0:
  //   FA1 = 1e-6*16*16 + 1e-3 = 0.001256
  //   FSA1 = 0.0001*16 = 0.0016
  //   FSA2(0) = 0.001
  //   FA4 = 0.002
  const double expected = 0.001256 + 0.0016 + 0.001 + 0.002;
  EXPECT_NEAR(report.predicted_time, expected, 1e-12);
}

TEST(Pipeline, SampleModelXmiRoundTripPreservesPrediction) {
  const prophet::uml::Model original = prophet::models::sample_model();
  const std::string xml = prophet::xmi::to_xml(original);
  const prophet::uml::Model reloaded = prophet::xmi::from_xml(xml);
  ASSERT_TRUE(prophet::xmi::equivalent(original, reloaded));

  const Prophet a(prophet::models::sample_model());
  const Prophet b(prophet::xmi::from_xml(xml));
  const auto params = small_machine();
  EXPECT_DOUBLE_EQ(a.estimate(params).predicted_time,
                   b.estimate(params).predicted_time);
}

TEST(Pipeline, InterpreterIsDeterministic) {
  const Prophet prophet(prophet::models::sample_model());
  const auto params = small_machine();
  const auto first = prophet.estimate(params);
  const auto second = prophet.estimate(params);
  EXPECT_DOUBLE_EQ(first.predicted_time, second.predicted_time);
  EXPECT_EQ(first.events, second.events);
}

TEST(Pipeline, TransformProducesExpectedShape) {
  const Prophet prophet(prophet::models::sample_model());
  const std::string cpp = prophet.transform();
  // Fig. 8 landmarks.
  EXPECT_NE(cpp.find("double GV = 0;"), std::string::npos) << cpp;
  EXPECT_NE(cpp.find("double P = 0;"), std::string::npos);
  EXPECT_NE(cpp.find("double FA1() { return"), std::string::npos);
  EXPECT_NE(cpp.find("double FSA2(double pid) { return"), std::string::npos);
  EXPECT_NE(cpp.find("ActionPlus A1(ctx, \"A1\");"), std::string::npos);
  EXPECT_NE(cpp.find("ActionPlus SA2(ctx, \"SA2\");"), std::string::npos);
  // Code fragment inlined before A1's execute (Fig. 8b lines 72-76).
  EXPECT_NE(cpp.find("// code associated with A1"), std::string::npos);
  EXPECT_NE(cpp.find("GV = 3.0;"), std::string::npos);
  // Branch mapped to if/else (Fig. 8b lines 77-87).
  EXPECT_NE(cpp.find("if (GV > 0.0) {"), std::string::npos);
  // SA nested block (Fig. 8b lines 79-82).
  EXPECT_NE(cpp.find("{  // activity SA"), std::string::npos);
  // execute() calls carry (uid, pid, tid, cost-function) (Fig. 8b).
  EXPECT_NE(cpp.find("A1.execute(1, pid, tid, FA1());"), std::string::npos)
      << cpp;
  EXPECT_NE(cpp.find("FSA2(pid));"), std::string::npos);
}

TEST(Pipeline, GeneratedCodeCompilesAndMatchesInterpreter) {
  const Prophet prophet(prophet::models::sample_model());
  prophet::codegen::TransformOptions options;
  options.emit_main = true;
  const std::string cpp = prophet.transform(options);

  const std::string dir = ::testing::TempDir();
  const std::string source = dir + "/prophet_generated_sample.cpp";
  const std::string binary = dir + "/prophet_generated_sample";
  {
    std::ofstream out(source);
    ASSERT_TRUE(out.is_open());
    out << cpp;
  }
  // The cgen module's command builder honors $CXX and
  // $PROPHET_EXTRA_CXX_FLAGS here exactly as in the codegen backend.
  prophet::cgen::CompileSpec spec;
  spec.source_path = source;
  spec.output_path = binary;
  spec.include_dir = std::string(PROPHET_SOURCE_DIR) + "/include";
  spec.archives = prophet::cgen::runtime_archives(PROPHET_BINARY_DIR);
  spec.optimization = "-O1";
  spec.extra_flags_fallback = PROPHET_EXTRA_CXX_FLAGS;
  const std::string command = prophet::cgen::compile_command(spec);
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string compiler_output;
  char buffer[512];
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    compiler_output += buffer;
  }
  const int compile_status = pclose(pipe);
  ASSERT_EQ(compile_status, 0) << "generated code failed to compile:\n"
                               << compiler_output << "\n--- source ---\n"
                               << cpp;

  // Run: argv = processes nodes ppn threads.
  const auto params = small_machine();
  const std::string run_command =
      binary + " " + std::to_string(params.processes) + " " +
      std::to_string(params.nodes) + " " +
      std::to_string(params.processors_per_node) + " " +
      std::to_string(params.threads_per_process);
  pipe = popen(run_command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string run_output;
  while (fgets(buffer, sizeof buffer, pipe) != nullptr) {
    run_output += buffer;
  }
  ASSERT_EQ(pclose(pipe), 0) << run_output;

  // Parse "predicted time: X s".
  const auto pos = run_output.find("predicted time:");
  ASSERT_NE(pos, std::string::npos) << run_output;
  const double generated_time =
      std::strtod(run_output.c_str() + pos + 15, nullptr);

  const auto interpreted = prophet.estimate(params);
  EXPECT_NEAR(generated_time, interpreted.predicted_time, 1e-9)
      << "generated:\n"
      << run_output << "\ninterpreted:\n"
      << interpreted.summary();
}

TEST(Pipeline, Kernel6CollapsedAndDetailedModelsAgree) {
  const double op_time = 2e-9;
  const std::int64_t n = 64;
  const std::int64_t m = 4;
  const Prophet collapsed(prophet::models::kernel6_model(n, m, op_time));
  const Prophet detailed(
      prophet::models::kernel6_detailed_model(n, m, op_time));
  ASSERT_TRUE(collapsed.check().ok()) << collapsed.check().to_string();
  ASSERT_TRUE(detailed.check().ok()) << detailed.check().to_string();
  prophet::machine::SystemParameters params;
  const double tc = collapsed.estimate(params).predicted_time;
  const double td = detailed.estimate(params).predicted_time;
  // Same predicted time (one hold vs n*(n-1)/2*m holds of op_time).
  EXPECT_NEAR(tc, td, tc * 1e-9);
  const double expected =
      static_cast<double>(m) * static_cast<double>(n) *
      static_cast<double>(n - 1) / 2.0 * op_time;
  EXPECT_NEAR(tc, expected, expected * 1e-9);
}

TEST(Pipeline, PingPongLatencyBandwidthModel) {
  const double bytes = 1 << 20;
  const std::int64_t rounds = 10;
  const Prophet prophet(prophet::models::pingpong_model(bytes, rounds));
  ASSERT_TRUE(prophet.check().ok()) << prophet.check().to_string();
  prophet::machine::SystemParameters params;
  params.processes = 2;
  params.nodes = 2;
  const auto report = prophet.estimate(params);
  // Each round: two messages, each latency + bytes/bandwidth (plus the
  // sender overhead charged once per send).
  const double per_message = params.network_latency +
                             bytes / params.network_bandwidth +
                             params.network_overhead;
  const double expected = 2.0 * static_cast<double>(rounds) * per_message;
  EXPECT_NEAR(report.predicted_time, expected, expected * 0.01);
}

TEST(Pipeline, SyntheticModelFullPipeline) {
  const Prophet prophet(prophet::models::synthetic_model(4, 8));
  EXPECT_TRUE(prophet.check().ok()) << prophet.check().to_string();
  const std::string cpp = prophet.transform();
  EXPECT_NE(cpp.find("prophet_model"), std::string::npos);
  const auto report = prophet.estimate({});
  EXPECT_GT(report.predicted_time, 0.0);
}

}  // namespace
