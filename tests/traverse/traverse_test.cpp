// Model Traverser: the Fig. 6 protocol order, navigator coverage,
// component interchangeability, and the shipped handlers.
#include <gtest/gtest.h>

#include "prophet/prophet.hpp"
#include "prophet/traverse/traverse.hpp"

namespace traverse = prophet::traverse;
namespace uml = prophet::uml;

namespace {

uml::Model two_diagram_model() {
  uml::ModelBuilder mb("M");
  mb.global("G", uml::VariableType::Real);
  mb.function("F", {}, "1");
  uml::DiagramBuilder sub = mb.diagram("sub");
  uml::NodeRef sinit = sub.initial();
  uml::NodeRef s1 = sub.action("S1");
  uml::NodeRef sfin = sub.final_node();
  sub.sequence({sinit, s1, sfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef act = main.activity("Sub", sub);
  uml::NodeRef fin = main.final_node();
  main.sequence({init, act, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  return model;
}

TEST(Traverser, Fig6ProtocolOrder) {
  // The Traverser must, per element: (1) send the navigation command,
  // (2) get the current element, (3) ask the handler to visit it.
  class MockNavigator final : public traverse::Navigator {
   public:
    explicit MockNavigator(std::vector<std::string>& log) : log_(&log) {}
    void start(const uml::Model& model) override {
      log_->push_back("start");
      entity_.kind = traverse::EntityKind::Model;
      entity_.model = &model;
      remaining_ = 3;
    }
    bool advance() override {
      log_->push_back("navigationCommand");
      return remaining_-- > 0;
    }
    const traverse::Entity& current() const override {
      log_->push_back("getCurrentElement");
      return entity_;
    }

   private:
    std::vector<std::string>* log_;
    traverse::Entity entity_;
    int remaining_ = 0;
  };
  class MockHandler final : public traverse::ContentHandler {
   public:
    explicit MockHandler(std::vector<std::string>& log) : log_(&log) {}
    void visit(const traverse::Entity&) override {
      log_->push_back("visitElement");
    }

   private:
    std::vector<std::string>* log_;
  };

  std::vector<std::string> log;
  MockNavigator navigator(log);
  MockHandler handler(log);
  traverse::Traverser traverser;
  const uml::Model model = two_diagram_model();
  const std::size_t visited = traverser.traverse(model, navigator, handler);
  EXPECT_EQ(visited, 3u);
  ASSERT_EQ(log.size(), 1u + 3u * 3u + 1u);  // start + 3 rounds + final cmd
  EXPECT_EQ(log[0], "start");
  for (int round = 0; round < 3; ++round) {
    const std::size_t base = 1 + static_cast<std::size_t>(round) * 3;
    EXPECT_EQ(log[base], "navigationCommand");
    EXPECT_EQ(log[base + 1], "getCurrentElement");
    EXPECT_EQ(log[base + 2], "visitElement");
  }
  EXPECT_EQ(log.back(), "navigationCommand");  // the exhausted advance
}

TEST(Traverser, DepthFirstVisitsEverything) {
  const uml::Model model = two_diagram_model();
  traverse::DepthFirstNavigator navigator;
  traverse::CountingHandler handler;
  traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  // Model enter+leave = 2; 1 variable; 1 function; 2 diagrams x
  // (enter+leave) = 4; 6 nodes; 4 edges.
  EXPECT_EQ(handler.count(traverse::EntityKind::Model), 2u);
  EXPECT_EQ(handler.count(traverse::EntityKind::Variable), 1u);
  EXPECT_EQ(handler.count(traverse::EntityKind::CostFunction), 1u);
  EXPECT_EQ(handler.count(traverse::EntityKind::Diagram), 4u);
  EXPECT_EQ(handler.count(traverse::EntityKind::Node), 6u);
  EXPECT_EQ(handler.count(traverse::EntityKind::Edge), 4u);
  EXPECT_EQ(handler.total(), 18u);
}

TEST(Traverser, DepthFirstKeepsDiagramContentsTogether) {
  const uml::Model model = two_diagram_model();
  traverse::DepthFirstNavigator navigator;
  traverse::RecordingHandler handler;
  traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  const auto& log = handler.log();
  // First diagram's nodes appear before the second diagram is entered.
  std::size_t first_d1_node = 0;
  std::size_t enter_d2 = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i] == "visit node n2" && first_d1_node == 0) {
      first_d1_node = i;
    }
    if (log[i] == "enter diagram d2") {
      enter_d2 = i;
    }
  }
  EXPECT_GT(first_d1_node, 0u);
  EXPECT_GT(enter_d2, first_d1_node);
}

TEST(Traverser, BreadthFirstGroupsNodesBeforeEdges) {
  const uml::Model model = two_diagram_model();
  traverse::BreadthFirstNavigator navigator;
  traverse::RecordingHandler handler;
  traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  // Last node visit must precede first edge visit.
  std::size_t last_node = 0;
  std::size_t first_edge = log10(1.0);  // 0
  bool edge_seen = false;
  const auto& log = handler.log();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].rfind("visit node", 0) == 0) {
      last_node = i;
    }
    if (!edge_seen && log[i].rfind("visit edge", 0) == 0) {
      first_edge = i;
      edge_seen = true;
    }
  }
  ASSERT_TRUE(edge_seen);
  EXPECT_LT(last_node, first_edge);
}

TEST(Traverser, NavigatorsAreInterchangeable) {
  // Any navigator combines with any handler — same totals either way.
  const uml::Model model = two_diagram_model();
  traverse::Traverser traverser;
  traverse::DepthFirstNavigator dfs;
  traverse::BreadthFirstNavigator bfs;
  traverse::CountingHandler h1;
  traverse::CountingHandler h2;
  EXPECT_EQ(traverser.traverse(model, dfs, h1),
            traverser.traverse(model, bfs, h2));
  EXPECT_EQ(h1.total(), h2.total());
}

TEST(Traverser, NavigatorIsRestartable) {
  const uml::Model model = two_diagram_model();
  traverse::DepthFirstNavigator navigator;
  traverse::Traverser traverser;
  traverse::CountingHandler h1;
  traverse::CountingHandler h2;
  traverser.traverse(model, navigator, h1);
  traverser.traverse(model, navigator, h2);  // start() resets
  EXPECT_EQ(h1.total(), h2.total());
}

TEST(Traverser, OutlineShowsStructure) {
  const uml::Model model = two_diagram_model();
  traverse::DepthFirstNavigator navigator;
  traverse::OutlineHandler handler;
  traverse::Traverser traverser;
  traverser.traverse(model, navigator, handler);
  const std::string& text = handler.text();
  EXPECT_NE(text.find("model M"), std::string::npos);
  EXPECT_NE(text.find("variable G"), std::string::npos);
  EXPECT_NE(text.find("<<action+>>"), std::string::npos);
  EXPECT_NE(text.find("\"S1\""), std::string::npos);
}

TEST(Traverser, EmptyModel) {
  uml::Model model("Empty");
  traverse::DepthFirstNavigator navigator;
  traverse::CountingHandler handler;
  traverse::Traverser traverser;
  // Just model enter/leave.
  EXPECT_EQ(traverser.traverse(model, navigator, handler), 2u);
}

TEST(Traverser, EntityLabels) {
  const uml::Model model = two_diagram_model();
  traverse::DepthFirstNavigator navigator;
  navigator.start(model);
  ASSERT_TRUE(navigator.advance());
  EXPECT_EQ(navigator.current().kind, traverse::EntityKind::Model);
  EXPECT_EQ(navigator.current().label(), "M");
}

}  // namespace
