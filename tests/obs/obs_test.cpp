// Unit tests for the observability substrate: registry cells and
// handles, POD folds, merge semantics, the metrics JSON schema, and the
// Chrome trace-event export.
#include "prophet/obs/obs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "../obs/mini_json.hpp"
#include "prophet/trace/trace.hpp"

namespace {

using prophet::obs::AnalyticCounters;
using prophet::obs::Counter;
using prophet::obs::ExprCounters;
using prophet::obs::Gauge;
using prophet::obs::Registry;
using prophet::obs::ScopedTimer;
using prophet::obs::SimCounters;
using prophet::obs::Timer;
using prophet::obs::TraceLog;

TEST(Registry, CounterGaugeTimerRoundTrip) {
  Registry registry;
  registry.counter("a.count").add();
  registry.counter("a.count").add(41);
  registry.gauge("a.level").set(2.5);
  registry.gauge("a.level").add(0.5);
  registry.timer("a.time").add_seconds(1.25);
  EXPECT_EQ(registry.counter_value("a.count"), 42U);
  EXPECT_DOUBLE_EQ(registry.gauge_value("a.level"), 3.0);
  EXPECT_DOUBLE_EQ(registry.timer_seconds("a.time"), 1.25);
  EXPECT_EQ(registry.size(), 3U);
}

TEST(Registry, AbsentNamesReadZero) {
  const Registry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.counter_value("missing"), 0U);
  EXPECT_DOUBLE_EQ(registry.gauge_value("missing"), 0.0);
  EXPECT_DOUBLE_EQ(registry.timer_seconds("missing"), 0.0);
}

TEST(Registry, HandlesStayValidAcrossInsertions) {
  // The std::map cells give node stability: a handle taken early must
  // survive arbitrarily many later insertions.
  Registry registry;
  Counter counter = registry.counter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).add();
  }
  counter.add(7);
  EXPECT_EQ(registry.counter_value("stable"), 7U);
}

TEST(Registry, DefaultConstructedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Timer timer;
  counter.add(5);
  gauge.set(1.0);
  timer.add_seconds(1.0);
  // Nothing to observe — the test is that none of these dereference.
  { ScopedTimer scoped{Timer{}}; }
  SUCCEED();
}

TEST(Registry, KindMismatchThrows) {
  Registry registry;
  registry.counter("cell");
  EXPECT_THROW(registry.gauge("cell"), std::logic_error);
  EXPECT_THROW(registry.timer("cell"), std::logic_error);
}

TEST(Registry, FoldsPodBlocksUnderPrefix) {
  Registry registry;
  ExprCounters expr;
  expr.instructions = 10;
  expr.evals = 2;
  expr.lazy_errors = 1;
  registry.fold("expr.", expr);
  EXPECT_EQ(registry.counter_value("expr.instructions"), 10U);
  EXPECT_EQ(registry.counter_value("expr.evals"), 2U);
  EXPECT_EQ(registry.counter_value("expr.lazy_errors"), 1U);

  SimCounters sim;
  sim.messages = 3;
  sim.barriers = 4;
  sim.context_switches = 5;
  registry.fold("sim.", sim);
  EXPECT_EQ(registry.counter_value("sim.messages"), 3U);
  EXPECT_EQ(registry.counter_value("sim.barriers"), 4U);
  EXPECT_EQ(registry.counter_value("sim.context_switches"), 5U);

  AnalyticCounters analytic;
  analytic.loop_collapses = 6;
  analytic.events_replayed = 7;
  analytic.schedule_wins = 1;
  registry.fold("analytic.", analytic);
  EXPECT_EQ(registry.counter_value("analytic.loop_collapses"), 6U);
  EXPECT_EQ(registry.counter_value("analytic.events_replayed"), 7U);
  EXPECT_EQ(registry.counter_value("analytic.schedule_wins"), 1U);

  // Folding again accumulates.
  registry.fold("expr.", expr);
  EXPECT_EQ(registry.counter_value("expr.instructions"), 20U);
}

TEST(Registry, MergeSumsEveryKind) {
  Registry a;
  a.counter("shared.count").add(1);
  a.gauge("shared.gauge").set(1.5);
  Registry b;
  b.counter("shared.count").add(2);
  b.gauge("shared.gauge").set(2.5);
  b.timer("only_b.time").add_seconds(0.5);
  a.merge(b);
  EXPECT_EQ(a.counter_value("shared.count"), 3U);
  EXPECT_DOUBLE_EQ(a.gauge_value("shared.gauge"), 4.0);
  EXPECT_DOUBLE_EQ(a.timer_seconds("only_b.time"), 0.5);
}

TEST(Registry, JsonExportHasSchemaAndSections) {
  Registry registry;
  registry.counter("z.count").add(7);
  registry.gauge("a.gauge").set(0.25);
  registry.timer("m.time").add_seconds(2.0);
  const auto doc = mini_json::parse(registry.to_json());
  EXPECT_EQ(doc.at("schema").str(), "prophet-metrics-1");
  EXPECT_DOUBLE_EQ(doc.at("counters").at("z.count").number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("a.gauge").number(), 0.25);
  EXPECT_DOUBLE_EQ(doc.at("timers").at("m.time").number(), 2.0);
  // Counters export as integers, not floats.
  EXPECT_EQ(registry.to_json().find("7.0"), std::string::npos);
}

TEST(Registry, EmptyRegistryExportsEmptySections) {
  const Registry registry;
  const auto doc = mini_json::parse(registry.to_json());
  EXPECT_TRUE(doc.at("counters").object().empty());
  EXPECT_TRUE(doc.at("gauges").object().empty());
  EXPECT_TRUE(doc.at("timers").object().empty());
}

TEST(Registry, JsonEscapesMetricNames) {
  Registry registry;
  registry.counter("weird\"name\\with\ttabs").add(1);
  const auto doc = mini_json::parse(registry.to_json());
  EXPECT_DOUBLE_EQ(
      doc.at("counters").at("weird\"name\\with\ttabs").number(), 1.0);
}

TEST(TraceLog, NullLogSpansAreNoOps) {
  { const TraceLog::HostSpan span(nullptr, 0, 0, "noop", "test"); }
  SUCCEED();
}

TEST(TraceLog, HostSpanRecordsOnItsLane) {
  TraceLog log;
  { const TraceLog::HostSpan span(&log, 3, 7, "work", "test"); }
  ASSERT_EQ(log.span_count(), 1U);
  const auto doc = mini_json::parse(log.to_chrome_json());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const auto& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].at("ph").str(), "X");
  EXPECT_EQ(events[0].at("name").str(), "work");
  EXPECT_EQ(events[0].at("cat").str(), "test");
  EXPECT_DOUBLE_EQ(events[0].at("pid").number(), 3.0);
  EXPECT_DOUBLE_EQ(events[0].at("tid").number(), 7.0);
  EXPECT_GE(events[0].at("dur").number(), 0.0);
}

TEST(TraceLog, AppendSimulatedMapsRanksToPidLanes) {
  prophet::trace::Trace trace;
  prophet::trace::TraceEvent event;
  event.start = 0.001;
  event.end = 0.002;
  event.pid = 2;
  event.tid = 1;
  event.element = "Work";
  event.kind = prophet::trace::EventKind::Compute;
  trace.add(event);

  TraceLog log;
  log.append_simulated(trace, 1000, "model");
  const auto doc = mini_json::parse(log.to_chrome_json());
  bool found_span = false;
  bool found_label = false;
  for (const auto& entry : doc.at("traceEvents").array()) {
    if (entry.at("ph").str() == "X") {
      found_span = true;
      EXPECT_DOUBLE_EQ(entry.at("pid").number(), 1002.0);
      EXPECT_DOUBLE_EQ(entry.at("tid").number(), 1.0);
      // Model seconds scale to microseconds.
      EXPECT_DOUBLE_EQ(entry.at("ts").number(), 1000.0);
      EXPECT_DOUBLE_EQ(entry.at("dur").number(), 1000.0);
    }
    if (entry.at("ph").str() == "M" &&
        entry.at("name").str() == "process_name") {
      found_label = true;
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_label);
}

TEST(TraceLog, MergeMovesSpansAndSharesEpoch) {
  TraceLog parent;
  TraceLog child(parent.epoch());
  { const TraceLog::HostSpan span(&child, 0, 1, "child work", "test"); }
  { const TraceLog::HostSpan span(&parent, 0, 0, "parent work", "test"); }
  parent.merge(std::move(child));
  EXPECT_EQ(parent.span_count(), 2U);
}

TEST(TraceLog, ChromeJsonSpansSortedByTimestamp) {
  TraceLog log;
  log.complete(200.0, 10.0, 0, 0, "later", "test");
  log.complete(100.0, 10.0, 0, 0, "earlier", "test");
  const auto doc = mini_json::parse(log.to_chrome_json());
  double last = -1.0;
  for (const auto& entry : doc.at("traceEvents").array()) {
    if (entry.at("ph").str() != "X") {
      continue;
    }
    EXPECT_GE(entry.at("ts").number(), last);
    last = entry.at("ts").number();
  }
  EXPECT_DOUBLE_EQ(last, 200.0);
}

TEST(TraceLog, JsonEscapesSpanNames) {
  TraceLog log;
  log.complete(0.0, 1.0, 0, 0, "name \"with\"\nnewline", "cat\\slash");
  const auto doc = mini_json::parse(log.to_chrome_json());
  const auto& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].at("name").str(), "name \"with\"\nnewline");
  EXPECT_EQ(events[0].at("cat").str(), "cat\\slash");
}

}  // namespace
