// Minimal recursive-descent JSON reader for test assertions over the
// observability exports (--metrics, --trace-json).  Tests only: strict
// enough to reject malformed output, small enough to need no library.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mini_json {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data =
      nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(data);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(data);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(data);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(data);
  }

  [[nodiscard]] const Object& object() const {
    if (!is_object()) {
      throw std::runtime_error("mini_json: not an object");
    }
    return std::get<Object>(data);
  }
  [[nodiscard]] const Array& array() const {
    if (!is_array()) {
      throw std::runtime_error("mini_json: not an array");
    }
    return std::get<Array>(data);
  }
  [[nodiscard]] double number() const {
    if (!is_number()) {
      throw std::runtime_error("mini_json: not a number");
    }
    return std::get<double>(data);
  }
  [[nodiscard]] const std::string& str() const {
    if (!is_string()) {
      throw std::runtime_error("mini_json: not a string");
    }
    return std::get<std::string>(data);
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    return object().count(key) != 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    const auto it = object().find(key);
    if (it == object().end()) {
      throw std::runtime_error("mini_json: missing key '" + key + "'");
    }
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    const Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("mini_json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      return Value{parse_string()};
    }
    if (consume("true")) {
      return Value{true};
    }
    if (consume("false")) {
      return Value{false};
    }
    if (consume("null")) {
      return Value{nullptr};
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value{object};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value{object};
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value{array};
    }
    for (;;) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value{array};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out += escape;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The exporters only emit \u00XX control escapes; anything
          // wider decodes to '?' (tests never assert on it).
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) {
      fail("bad number '" + token + "'");
    }
    return Value{value};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace mini_json
