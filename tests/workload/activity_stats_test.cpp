// ActionPlus / ActivityPlus bookkeeping and trace lanes under parallel
// regions (thread ids must come from the executing thread, not the
// element's declaring context).
#include <gtest/gtest.h>

#include "prophet/workload/runtime.hpp"

namespace machine = prophet::machine;
namespace sim = prophet::sim;
namespace workload = prophet::workload;

namespace {

TEST(ActionPlusStats, CountsExecutions) {
  sim::Engine engine;
  machine::MachineModel machine_model(engine, {});
  workload::Communicator comm(engine, machine_model);
  workload::ModelContext ctx{&engine, &machine_model, &comm,
                             nullptr,  0,              0};
  auto proc = [](workload::ModelContext c,
                 std::uint64_t* executions,
                 double* total) -> sim::Process {
    workload::ActionPlus action(c, "A");
    for (int i = 0; i < 3; ++i) {
      co_await action.execute(1, c.pid, c.tid, 0.5);
    }
    *executions = action.executions();
    *total = action.total_time();
  };
  std::uint64_t executions = 0;
  double total = 0;
  engine.spawn(proc(ctx, &executions, &total));
  engine.run();
  EXPECT_EQ(executions, 3u);
  EXPECT_DOUBLE_EQ(total, 1.5);
}

TEST(ActivityPlus, RecordsRegionSpan) {
  sim::Engine engine;
  machine::MachineModel machine_model(engine, {});
  workload::Communicator comm(engine, machine_model);
  prophet::trace::Trace trace;
  workload::ModelContext ctx{&engine, &machine_model, &comm, &trace, 0, 0};
  auto proc = [](workload::ModelContext c) -> sim::Process {
    workload::ActivityPlus activity(c, "SA");
    const double started = activity.begin(9);
    co_await c.engine->hold(2.0);
    activity.end(9, started);
  };
  engine.spawn(proc(ctx));
  engine.run();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, prophet::trace::EventKind::Region);
  EXPECT_DOUBLE_EQ(trace.events()[0].duration(), 2.0);
}

TEST(ParallelRegion, TraceLanesCarryThreadIds) {
  machine::SystemParameters params;
  params.processors_per_node = 2;
  sim::Engine engine;
  machine::MachineModel machine_model(engine, params);
  workload::Communicator comm(engine, machine_model);
  prophet::trace::Trace trace;
  workload::ModelContext ctx{&engine, &machine_model, &comm, &trace, 0, 0};
  auto proc = [](workload::ModelContext c) -> sim::Process {
    co_await workload::parallel_region(
        c, 2, 1, "R", [](workload::ModelContext tctx) -> sim::Process {
          workload::ActionPlus action(tctx, "W");
          co_await action.execute(2, tctx.pid, tctx.tid, 0.5);
        });
  };
  engine.spawn(proc(ctx));
  engine.run();
  // Two compute spans on tids 0 and 1, plus one region span on tid 0.
  std::set<int> tids;
  for (const auto& event : trace.events()) {
    if (event.kind == prophet::trace::EventKind::Compute) {
      tids.insert(event.tid);
    }
  }
  EXPECT_EQ(tids, (std::set<int>{0, 1}));
}

TEST(ParallelRegion, RejectsNonPositiveThreadCount) {
  sim::Engine engine;
  machine::MachineModel machine_model(engine, {});
  workload::Communicator comm(engine, machine_model);
  workload::ModelContext ctx{&engine, &machine_model, &comm,
                             nullptr,  0,              0};
  auto proc = [](workload::ModelContext c) -> sim::Process {
    co_await workload::parallel_region(
        c, 0, 1, "R",
        [](workload::ModelContext) -> sim::Process { co_return; });
  };
  engine.spawn(proc(ctx));
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(OmpBarrier, SynchronizesRegionThreads) {
  machine::SystemParameters params;
  params.processors_per_node = 4;
  sim::Engine engine;
  machine::MachineModel machine_model(engine, params);
  workload::Communicator comm(engine, machine_model);
  workload::ModelContext ctx{&engine, &machine_model, &comm,
                             nullptr,  0,              0};
  std::vector<double> after_barrier;
  auto proc = [&after_barrier](workload::ModelContext c) -> sim::Process {
    co_await workload::parallel_region(
        c, 3, 1, "R",
        [&after_barrier](workload::ModelContext tctx) -> sim::Process {
          // Threads arrive at different times; barrier aligns them.
          co_await tctx.engine->hold(0.1 * (tctx.tid + 1));
          workload::OmpBarrierElement barrier(tctx, "B");
          co_await barrier.execute(3, tctx.pid, tctx.tid);
          after_barrier.push_back(tctx.engine->now());
        });
  };
  engine.spawn(proc(ctx));
  engine.run();
  ASSERT_EQ(after_barrier.size(), 3u);
  for (const double t : after_barrier) {
    EXPECT_DOUBLE_EQ(t, 0.3);  // slowest thread's arrival
  }
}

}  // namespace
