// Workload elements: ActionPlus contention, message passing, collectives,
// barriers, parallel regions, worksharing, critical sections, fork/join.
#include <gtest/gtest.h>

#include "prophet/workload/runtime.hpp"

namespace machine = prophet::machine;
namespace sim = prophet::sim;
namespace workload = prophet::workload;

namespace {

/// Test fixture wiring a fresh engine + machine + communicator.
struct Rig {
  explicit Rig(machine::SystemParameters params = {})
      : machine_model(engine, params), comm(engine, machine_model) {}

  workload::ModelContext ctx(int pid = 0, int tid = 0) {
    workload::ModelContext context;
    context.engine = &engine;
    context.machine = &machine_model;
    context.comm = &comm;
    context.trace = &trace;
    context.pid = pid;
    context.tid = tid;
    return context;
  }

  sim::Engine engine;
  machine::MachineModel machine_model;
  workload::Communicator comm;
  prophet::trace::Trace trace;
};

machine::SystemParameters params_np(int np, int nodes = 0, int ppn = 1) {
  machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes == 0 ? np : nodes;
  params.processors_per_node = ppn;
  return params;
}

sim::Process run_action(workload::ModelContext ctx, double cost) {
  workload::ActionPlus action(ctx, "A");
  co_await action.execute(1, ctx.pid, ctx.tid, cost);
}

TEST(ActionPlus, ConsumesCost) {
  Rig rig;
  rig.engine.spawn(run_action(rig.ctx(), 2.5));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.engine.now(), 2.5);
  ASSERT_EQ(rig.trace.size(), 1u);
  EXPECT_EQ(rig.trace.events()[0].element, "A");
  EXPECT_DOUBLE_EQ(rig.trace.events()[0].duration(), 2.5);
}

TEST(ActionPlus, CpuSpeedScaling) {
  machine::SystemParameters params;
  params.cpu_speed = 2.0;
  Rig rig(params);
  rig.engine.spawn(run_action(rig.ctx(), 3.0));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.engine.now(), 1.5);
}

TEST(ActionPlus, OversubscriptionQueues) {
  // 2 processes on a single 1-processor node serialize.
  Rig rig(params_np(2, /*nodes=*/1, /*ppn=*/1));
  rig.engine.spawn(run_action(rig.ctx(0), 1.0));
  rig.engine.spawn(run_action(rig.ctx(1), 1.0));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.engine.now(), 2.0);
}

TEST(ActionPlus, SeparateNodesRunConcurrently) {
  Rig rig(params_np(2, /*nodes=*/2, /*ppn=*/1));
  rig.engine.spawn(run_action(rig.ctx(0), 1.0));
  rig.engine.spawn(run_action(rig.ctx(1), 1.0));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.engine.now(), 1.0);
}

TEST(ActionPlus, NegativeCostThrows) {
  Rig rig;
  rig.engine.spawn(run_action(rig.ctx(), -1.0));
  EXPECT_THROW(rig.engine.run(), std::invalid_argument);
}

sim::Process sender(workload::ModelContext ctx, int dest, double bytes) {
  workload::SendElement send(ctx, "S");
  co_await send.execute(1, ctx.pid, ctx.tid, dest, bytes, 0);
}

sim::Process receiver(workload::ModelContext ctx, int source, double bytes,
                      double* finished) {
  workload::RecvElement recv(ctx, "R");
  co_await recv.execute(2, ctx.pid, ctx.tid, source, bytes, 0);
  *finished = ctx.engine->now();
}

TEST(MessagePassing, TransferTimeLatencyPlusBandwidth) {
  auto params = params_np(2, 2);
  Rig rig(params);
  double finished = -1;
  rig.engine.spawn(sender(rig.ctx(0), 1, 1e6));
  rig.engine.spawn(receiver(rig.ctx(1), 0, 1e6, &finished));
  rig.engine.run();
  const double expected = params.network_overhead +
                          params.network_latency +
                          1e6 / params.network_bandwidth;
  EXPECT_NEAR(finished, expected, 1e-12);
}

TEST(MessagePassing, IntraNodeIsFaster) {
  auto params = params_np(2, /*nodes=*/1, /*ppn=*/2);
  Rig rig(params);
  double finished = -1;
  rig.engine.spawn(sender(rig.ctx(0), 1, 1e6));
  rig.engine.spawn(receiver(rig.ctx(1), 0, 1e6, &finished));
  rig.engine.run();
  const double expected = params.network_overhead + params.memory_latency +
                          1e6 / params.memory_bandwidth;
  EXPECT_NEAR(finished, expected, 1e-12);
}

TEST(MessagePassing, LateReceiverPaysNoTransferWait) {
  auto params = params_np(2, 2);
  Rig rig(params);
  double finished = -1;
  auto late_receiver = [&](workload::ModelContext ctx) -> sim::Process {
    co_await ctx.engine->hold(10.0);  // message long since arrived
    workload::RecvElement recv(ctx, "R");
    co_await recv.execute(2, ctx.pid, ctx.tid, 0, 8, 0);
    finished = ctx.engine->now();
  };
  rig.engine.spawn(sender(rig.ctx(0), 1, 8));
  rig.engine.spawn(late_receiver(rig.ctx(1)));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(finished, 10.0);
}

TEST(MessagePassing, TagsSeparateStreams) {
  auto params = params_np(2, 2);
  Rig rig(params);
  std::vector<int> tags;
  auto tagged_receiver = [&](workload::ModelContext ctx,
                             int tag) -> sim::Process {
    workload::RecvElement recv(ctx, "R");
    co_await recv.execute(2, ctx.pid, ctx.tid, 0, 8, tag);
    tags.push_back(tag);
  };
  auto tagged_sender = [](workload::ModelContext ctx) -> sim::Process {
    workload::SendElement s1(ctx, "S1");
    workload::SendElement s2(ctx, "S2");
    // Send tag 7 first, then tag 3; receivers match by tag, not order.
    co_await s1.execute(1, ctx.pid, ctx.tid, 1, 8, 7);
    co_await s2.execute(1, ctx.pid, ctx.tid, 1, 8, 3);
  };
  rig.engine.spawn(tagged_receiver(rig.ctx(1), 3));
  rig.engine.spawn(tagged_receiver(rig.ctx(1), 7));
  rig.engine.spawn(tagged_sender(rig.ctx(0)));
  rig.engine.run();
  ASSERT_EQ(tags.size(), 2u);
}

sim::Process barrier_proc(workload::ModelContext ctx, double delay,
                          std::vector<double>* releases) {
  co_await ctx.engine->hold(delay);
  workload::BarrierElement barrier(ctx, "B");
  co_await barrier.execute(3, ctx.pid, ctx.tid);
  releases->push_back(ctx.engine->now());
}

TEST(Barrier, ReleasesAllTogetherAtLastArrival) {
  auto params = params_np(3, 3);
  Rig rig(params);
  std::vector<double> releases;
  rig.engine.spawn(barrier_proc(rig.ctx(0), 1.0, &releases));
  rig.engine.spawn(barrier_proc(rig.ctx(1), 5.0, &releases));
  rig.engine.spawn(barrier_proc(rig.ctx(2), 3.0, &releases));
  rig.engine.run();
  ASSERT_EQ(releases.size(), 3u);
  // All release at 5.0 + 2 rounds of barrier latency.
  const double expected = 5.0 + 2 * params.barrier_latency;
  for (const double t : releases) {
    EXPECT_NEAR(t, expected, 1e-12);
  }
}

TEST(Collective, ModelTimeFormulas) {
  sim::Engine engine;
  auto params = params_np(8, 8);
  machine::MachineModel machine_model(engine, params);
  const double round = machine_model.collective_round_time(1024);
  using CK = workload::CollectiveKind;
  EXPECT_DOUBLE_EQ(workload::CollectiveElement::model_time(machine_model,
                                                           CK::Broadcast, 8,
                                                           1024),
                   3 * round);
  EXPECT_DOUBLE_EQ(workload::CollectiveElement::model_time(machine_model,
                                                           CK::AllReduce, 8,
                                                           1024),
                   6 * round);
  EXPECT_DOUBLE_EQ(
      workload::CollectiveElement::model_time(
          machine_model, CK::Scatter, 8, 1024),
      7 * machine_model.collective_round_time(128));
  // Single participant: free.
  EXPECT_DOUBLE_EQ(workload::CollectiveElement::model_time(machine_model,
                                                           CK::Reduce, 1,
                                                           1024),
                   0.0);
}

sim::Process collective_proc(workload::ModelContext ctx, double* done) {
  workload::CollectiveElement bcast(ctx, "Bcast",
                                    workload::CollectiveKind::Broadcast);
  co_await bcast.execute(4, ctx.pid, ctx.tid, 1024, 0);
  *done = ctx.engine->now();
}

TEST(Collective, SynchronizesAllProcesses) {
  auto params = params_np(4, 4);
  Rig rig(params);
  std::vector<double> done(4, -1);
  for (int pid = 0; pid < 4; ++pid) {
    rig.engine.spawn(collective_proc(rig.ctx(pid), &done[pid]));
  }
  rig.engine.run();
  const double expected = workload::CollectiveElement::model_time(
      rig.machine_model, workload::CollectiveKind::Broadcast, 4, 1024);
  for (const double t : done) {
    EXPECT_NEAR(t, expected, 1e-12);
  }
}

TEST(Workshare, StaticShares) {
  using W = workload::WorkshareElement;
  EXPECT_EQ(W::static_share(10, 4, 0), 3);
  EXPECT_EQ(W::static_share(10, 4, 1), 3);
  EXPECT_EQ(W::static_share(10, 4, 2), 2);
  EXPECT_EQ(W::static_share(10, 4, 3), 2);
  EXPECT_EQ(W::static_share(8, 4, 0), 2);
  EXPECT_EQ(W::static_share(3, 8, 5), 0);
}

TEST(ParallelRegion, ThreadsGetDistinctTids) {
  machine::SystemParameters params;
  params.processors_per_node = 4;
  Rig rig(params);
  std::vector<int> tids;
  auto region = [&tids](workload::ModelContext ctx) -> sim::Process {
    co_await workload::parallel_region(
        ctx, 4, 9, "R", [&tids](workload::ModelContext tctx) -> sim::Process {
          tids.push_back(tctx.tid);
          co_await tctx.engine->hold(0.1);
        });
  };
  rig.engine.spawn(region(rig.ctx()));
  rig.engine.run();
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(tids, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(rig.engine.now(), 0.1);  // threads overlapped
}

TEST(ParallelRegion, WorkshareSplitsAcrossThreads) {
  machine::SystemParameters params;
  params.processors_per_node = 4;
  Rig rig(params);
  auto region = [](workload::ModelContext ctx) -> sim::Process {
    co_await workload::parallel_region(
        ctx, 4, 9, "R", [](workload::ModelContext tctx) -> sim::Process {
          workload::WorkshareElement loop(tctx, "W");
          co_await loop.execute(5, tctx.pid, tctx.tid, 1000, 0.001, "static",
                                0);
        });
  };
  rig.engine.spawn(region(rig.ctx()));
  rig.engine.run();
  // 1000 iterations x 1 ms / 4 threads = 0.25 s.
  EXPECT_NEAR(rig.engine.now(), 0.25, 1e-9);
}

TEST(ParallelRegion, SingleThreadDegenerate) {
  Rig rig;
  auto region = [](workload::ModelContext ctx) -> sim::Process {
    co_await workload::parallel_region(
        ctx, 1, 9, "R", [](workload::ModelContext tctx) -> sim::Process {
          workload::WorkshareElement loop(tctx, "W");
          co_await loop.execute(5, tctx.pid, tctx.tid, 100, 0.01, "static",
                                0);
        });
  };
  rig.engine.spawn(region(rig.ctx()));
  rig.engine.run();
  EXPECT_NEAR(rig.engine.now(), 1.0, 1e-9);
}

TEST(Critical, SerializesThreads) {
  machine::SystemParameters params;
  params.processors_per_node = 4;
  Rig rig(params);
  auto region = [](workload::ModelContext ctx) -> sim::Process {
    co_await workload::parallel_region(
        ctx, 4, 9, "R", [](workload::ModelContext tctx) -> sim::Process {
          workload::CriticalElement critical(tctx, "C", "lock");
          auto engine = tctx.engine;
          co_await critical.execute(6, tctx.pid, tctx.tid,
                                    [engine]() -> sim::Process {
                                      co_await engine->hold(1.0);
                                    });
        });
  };
  rig.engine.spawn(region(rig.ctx()));
  rig.engine.run();
  // 4 threads x 1 s under one lock.
  EXPECT_DOUBLE_EQ(rig.engine.now(), 4.0);
}

TEST(ForkJoin, WaitsForSlowestBranch) {
  Rig rig;
  auto proc = [](workload::ModelContext ctx) -> sim::Process {
    auto engine = ctx.engine;
    std::vector<std::function<sim::Process()>> branches;
    branches.push_back([engine]() -> sim::Process { co_await engine->hold(1.0); });
    branches.push_back([engine]() -> sim::Process { co_await engine->hold(5.0); });
    branches.push_back([engine]() -> sim::Process { co_await engine->hold(3.0); });
    co_await workload::fork_join(ctx, std::move(branches));
  };
  rig.engine.spawn(proc(rig.ctx()));
  rig.engine.run();
  EXPECT_DOUBLE_EQ(rig.engine.now(), 5.0);
}

TEST(Communicator, MailboxesCreatedLazily) {
  Rig rig(params_np(4, 4));
  EXPECT_EQ(rig.comm.mailbox_count(), 0u);
  rig.comm.mailbox(1, 0, 0);
  rig.comm.mailbox(1, 0, 0);  // same key, no new mailbox
  rig.comm.mailbox(2, 0, 0);
  EXPECT_EQ(rig.comm.mailbox_count(), 2u);
}

}  // namespace
