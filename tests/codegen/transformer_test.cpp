// Code generator: Fig. 4 mapping, Fig. 5 stages, structured control flow,
// identifier sanitization, error handling.
#include <gtest/gtest.h>

#include "prophet/codegen/transformer.hpp"
#include "prophet/prophet.hpp"

namespace codegen = prophet::codegen;
namespace uml = prophet::uml;

namespace {

const codegen::Transformer kTransformer;

TEST(Sanitize, Identifiers) {
  EXPECT_EQ(codegen::sanitize_identifier("Kernel6"), "Kernel6");
  EXPECT_EQ(codegen::sanitize_identifier("Kernel 6"), "Kernel_6");
  EXPECT_EQ(codegen::sanitize_identifier("a-b.c"), "a_b_c");
  EXPECT_EQ(codegen::sanitize_identifier("6pack"), "e_6pack");
  EXPECT_EQ(codegen::sanitize_identifier(""), "e_");
}

TEST(Fig4, Kernel6Mapping) {
  // Fig. 4: the element Kernel6 maps to an ActionPlus instance whose
  // execute() receives the cost function FK6.
  const uml::Model model = prophet::models::kernel6_model(100, 10, 1e-9);
  const std::string cpp = kTransformer.transform(model);
  EXPECT_NE(cpp.find("ActionPlus Kernel6(ctx, \"Kernel6\");"),
            std::string::npos)
      << cpp;
  EXPECT_NE(cpp.find("Kernel6.execute("), std::string::npos);
  EXPECT_NE(cpp.find("FK6());"), std::string::npos);
  EXPECT_NE(cpp.find("double FK6() { return"), std::string::npos);
}

TEST(Fig5, SelectionFindsAllStereotypedElements) {
  const uml::Model model = prophet::models::sample_model();
  const auto elements = kTransformer.select_performance_elements(model);
  // SA1, SA2, A1, SA (activity), A2, A4.
  EXPECT_EQ(elements.size(), 6u);
  for (const auto* element : elements) {
    EXPECT_TRUE(element->has_stereotype());
  }
}

TEST(Fig5, GlobalsStage) {
  const uml::Model model = prophet::models::sample_model();
  const std::string globals = kTransformer.emit_globals(model);
  EXPECT_NE(globals.find("double GV = 0;"), std::string::npos);
  EXPECT_NE(globals.find("double P = 0;"), std::string::npos);
}

TEST(Fig5, IntegerGlobalsBecomeLong) {
  const uml::Model model = prophet::models::kernel6_model(64, 4, 1e-9);
  const std::string globals = kTransformer.emit_globals(model);
  EXPECT_NE(globals.find("long N = 0;"), std::string::npos);
  EXPECT_NE(globals.find("long M = 0;"), std::string::npos);
  EXPECT_NE(globals.find("double c = 0;"), std::string::npos);
}

TEST(Fig5, CostFunctionStageOrdersDependencies) {
  uml::ModelBuilder mb("M");
  // Declared caller-first; emission must flip the order.
  mb.function("Caller", {}, "Callee() * 2");
  mb.function("Callee", {}, "0.5");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  const std::string functions =
      kTransformer.emit_cost_functions(std::move(mb).build());
  const auto callee_pos = functions.find("double Callee");
  const auto caller_pos = functions.find("double Caller");
  ASSERT_NE(callee_pos, std::string::npos);
  ASSERT_NE(caller_pos, std::string::npos);
  EXPECT_LT(callee_pos, caller_pos);
}

TEST(Fig5, CyclicCostFunctionsRejected) {
  uml::ModelBuilder mb("M");
  mb.function("F", {}, "G()");
  mb.function("G", {}, "F()");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW((void)kTransformer.emit_cost_functions(model),
               codegen::TransformError);
}

TEST(Fig5, ParameterizedFunctions) {
  uml::ModelBuilder mb("M");
  mb.function("F", {"pid", "x"}, "pid * x");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  const std::string functions =
      kTransformer.emit_cost_functions(std::move(mb).build());
  EXPECT_NE(functions.find("double F(double pid, double x)"),
            std::string::npos);
}

TEST(Fig5, LocalsStage) {
  uml::ModelBuilder mb("M");
  mb.local("L", uml::VariableType::Real, "2.5");
  mb.local("K", uml::VariableType::Integer);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fin);
  const std::string locals = kTransformer.emit_locals(std::move(mb).build());
  EXPECT_NE(locals.find("double L = 2.5;"), std::string::npos);
  EXPECT_NE(locals.find("long K = 0;"), std::string::npos);
}

TEST(Fig5, DeclarationStageUsesRuntimeClasses) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef s = d.send("S", "1", "8");
  uml::NodeRef r = d.recv("R", "0", "8");
  uml::NodeRef bar = d.barrier("Bar");
  uml::NodeRef red = d.reduce("Red", "0", "8");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, s, r, bar, red, fin});
  const std::string decls =
      kTransformer.emit_declarations(std::move(mb).build());
  EXPECT_NE(decls.find("ActionPlus A(ctx, \"A\");"), std::string::npos);
  EXPECT_NE(decls.find("SendElement S(ctx, \"S\");"), std::string::npos);
  EXPECT_NE(decls.find("RecvElement R(ctx, \"R\");"), std::string::npos);
  EXPECT_NE(decls.find("BarrierElement Bar(ctx, \"Bar\");"),
            std::string::npos);
  EXPECT_NE(decls.find("CollectiveElement Red(ctx, \"Red\", "
                       "prophet::workload::CollectiveKind::Reduce);"),
            std::string::npos);
}

TEST(Fig5, DuplicateNamesDisambiguated) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("X").cost("1");
  uml::NodeRef b = d.action("X").cost("2");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, b, fin});
  const std::string decls =
      kTransformer.emit_declarations(std::move(mb).build());
  EXPECT_NE(decls.find("ActionPlus X(ctx"), std::string::npos);
  EXPECT_NE(decls.find("ActionPlus X_n3(ctx"), std::string::npos) << decls;
}

TEST(Flow, LoopBecomesForStatement) {
  const uml::Model model =
      prophet::models::kernel6_detailed_model(10, 2, 1e-9);
  const std::string flow = kTransformer.emit_flow(model);
  EXPECT_NE(flow.find("for (double L = 0; L < (M); L += 1)"),
            std::string::npos)
      << flow;
}

TEST(Flow, TriangularLoopBound) {
  const uml::Model model =
      prophet::models::kernel6_detailed_model(10, 2, 1e-9);
  const std::string cpp = kTransformer.transform(model);
  EXPECT_NE(cpp.find("i2 + 1.0"), std::string::npos) << cpp;
}

TEST(Flow, ForkBecomesForkJoin) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fork = d.fork();
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef b = d.action("B").cost("2");
  uml::NodeRef join = d.join();
  uml::NodeRef fin = d.final_node();
  d.flow(init, fork);
  d.flow(fork, a);
  d.flow(fork, b);
  d.flow(a, join);
  d.flow(b, join);
  d.flow(join, fin);
  const std::string flow = kTransformer.emit_flow(std::move(mb).build());
  EXPECT_NE(flow.find("fork_join(ctx, {"), std::string::npos);
  EXPECT_NE(flow.find("[&]() -> prophet::sim::Process {"),
            std::string::npos);
}

TEST(Flow, DecisionWithoutElseGetsRuntimeGuardError) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision("Choice");
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef b = d.action("B").cost("2");
  uml::NodeRef merge = d.merge();
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "X > 0");
  d.flow(dec, b, "X < 0");
  d.flow(a, merge);
  d.flow(b, merge);
  d.flow(merge, fin);
  const std::string flow = kTransformer.emit_flow(std::move(mb).build());
  EXPECT_NE(flow.find("} else if (X < 0.0) {"), std::string::npos) << flow;
  EXPECT_NE(flow.find("throw std::runtime_error"), std::string::npos);
}

TEST(Flow, OmpParallelEmitsRegionLambda) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::NodeRef binit = body.initial();
  uml::NodeRef w = body.omp_for("W", "100", "0.001");
  uml::NodeRef bfin = body.final_node();
  body.sequence({binit, w, bfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef region = main.omp_parallel("R", body, "nt");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, region, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  const std::string cpp = kTransformer.transform(model);
  EXPECT_NE(cpp.find("parallel_region(ctx, static_cast<int>(nt)"),
            std::string::npos)
      << cpp;
  // The workshare element is declared inside the lambda (thread context),
  // not at function scope.
  const auto lambda_pos = cpp.find("[&](prophet::workload::ModelContext");
  const auto decl_pos = cpp.find("WorkshareElement W(ctx, \"W\");");
  ASSERT_NE(lambda_pos, std::string::npos);
  ASSERT_NE(decl_pos, std::string::npos);
  EXPECT_GT(decl_pos, lambda_pos);
}

TEST(Flow, UidVariableSubstitutedWithLiteral) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("uid * 0.001");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const std::string flow = kTransformer.emit_flow(std::move(mb).build());
  // A's uid is 2 (initial gets 1).
  EXPECT_NE(flow.find("2.0 * 0.001"), std::string::npos) << flow;
}

TEST(Errors, UnstructuredBackEdgeRejected) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef dec = d.decision();
  uml::NodeRef fin = d.final_node();
  d.flow(init, a);
  d.flow(a, dec);
  d.flow(dec, a, "X > 0");  // back edge loop
  d.flow(dec, fin, "else");
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW((void)kTransformer.emit_flow(model), codegen::TransformError);
}

TEST(Errors, MissingSubdiagram) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef act = d.activity("X", "ghost");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, act, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW((void)kTransformer.emit_flow(model), codegen::TransformError);
}

TEST(Errors, UnparseableCostExpression) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("1 +");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW((void)kTransformer.emit_flow(model), codegen::TransformError);
}

TEST(Options, MainOnlyWhenRequested) {
  const uml::Model model = prophet::models::sample_model();
  EXPECT_EQ(kTransformer.transform(model).find("int main("),
            std::string::npos);
  codegen::TransformOptions options;
  options.emit_main = true;
  const codegen::Transformer with_main(options);
  EXPECT_NE(with_main.transform(model).find("int main("),
            std::string::npos);
}

TEST(Options, BannersToggle) {
  const uml::Model model = prophet::models::sample_model();
  codegen::TransformOptions options;
  options.banners = false;
  const codegen::Transformer no_banners(options);
  EXPECT_EQ(no_banners.transform(model).find("Fig. 5 lines"),
            std::string::npos);
}

TEST(Options, CustomFunctionName) {
  const uml::Model model = prophet::models::sample_model();
  codegen::TransformOptions options;
  options.model_function = "my_model";
  const codegen::Transformer custom(options);
  EXPECT_NE(custom.transform(model).find(
                "prophet::sim::Process my_model(prophet"),
            std::string::npos);
}

TEST(Emitter, IndentationAndBalance) {
  codegen::CppEmitter emitter;
  emitter.open("if (x) {");
  emitter.line("y();");
  emitter.close();
  EXPECT_EQ(emitter.text(), "if (x) {\n  y();\n}\n");
  EXPECT_THROW(emitter.dedent(), std::logic_error);
}

}  // namespace
