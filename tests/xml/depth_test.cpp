// The parser bounds element nesting so pathological documents cannot
// blow the recursion stack.
#include <gtest/gtest.h>

#include <string>

#include "prophet/xml/parser.hpp"

namespace {

std::string nested(int depth) {
  std::string text;
  for (int i = 0; i < depth; ++i) {
    text += "<a>";
  }
  for (int i = 0; i < depth; ++i) {
    text += "</a>";
  }
  return text;
}

TEST(XmlDepth, NestingBeyondLimitRejected) {
  try {
    (void)prophet::xml::parse(nested(300));
    FAIL() << "expected ParseError";
  } catch (const prophet::xml::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("nesting"), std::string::npos);
  }
}

TEST(XmlDepth, NestingWithinLimitAccepted) {
  const auto doc = prophet::xml::parse(nested(200));
  EXPECT_EQ(doc.root().name(), "a");
}

}  // namespace
