// DOM construction, lookup, cloning, equality.
#include <gtest/gtest.h>

#include "prophet/xml/dom.hpp"
#include "prophet/xml/writer.hpp"

namespace xml = prophet::xml;

namespace {

TEST(XmlDom, BuildAndQuery) {
  xml::Document doc = xml::Document::with_root("model");
  auto& diagrams = doc.root().add_element("diagrams");
  auto& d1 = diagrams.add_element("diagram");
  d1.set_attr("id", "d1");
  diagrams.add_element("diagram").set_attr("id", "d2");

  EXPECT_EQ(doc.root().element_count(), 1u);
  EXPECT_EQ(diagrams.element_count(), 2u);
  EXPECT_EQ(doc.root().subtree_size(), 4u);
  ASSERT_NE(doc.root().find("diagrams/diagram"), nullptr);
  EXPECT_EQ(doc.root().find("diagrams/diagram")->attr_or("id", ""), "d1");
  EXPECT_EQ(doc.root().find("nothing/here"), nullptr);
}

TEST(XmlDom, SetAttrOverwrites) {
  xml::Element element("e");
  element.set_attr("k", "1");
  element.set_attr("k", "2");
  EXPECT_EQ(element.attributes().size(), 1u);
  EXPECT_EQ(element.attr_or("k", ""), "2");
}

TEST(XmlDom, RemoveAttr) {
  xml::Element element("e");
  element.set_attr("k", "1");
  EXPECT_TRUE(element.remove_attr("k"));
  EXPECT_FALSE(element.remove_attr("k"));
  EXPECT_FALSE(element.has_attr("k"));
}

TEST(XmlDom, CloneIsDeepAndIndependent) {
  xml::Document doc = xml::Document::with_root("a");
  doc.root().add_element("b").add_text("text");
  xml::Document copy = doc.clone();
  EXPECT_TRUE(xml::deep_equal(doc, copy));
  copy.root().add_element("c");
  EXPECT_FALSE(xml::deep_equal(doc, copy));
}

TEST(XmlDom, DeepEqualDistinguishesAttributeValues) {
  xml::Element a("e");
  a.set_attr("k", "1");
  xml::Element b("e");
  b.set_attr("k", "2");
  EXPECT_FALSE(xml::deep_equal(a, b));
  b.set_attr("k", "1");
  EXPECT_TRUE(xml::deep_equal(a, b));
}

TEST(XmlDom, DeepEqualDistinguishesNodeKinds) {
  xml::Element a("e");
  a.add_text("x");
  xml::Element b("e");
  b.add_cdata("x");
  EXPECT_FALSE(xml::deep_equal(a, b));
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(xml::escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlWriter, CompactMode) {
  xml::Document doc = xml::Document::with_root("a");
  doc.root().add_element("b");
  const std::string out = xml::to_string(
      doc, {.pretty = false, .indent = 0, .declaration = false});
  EXPECT_EQ(out, "<a><b/></a>");
}

TEST(XmlWriter, PrettyModeIndents) {
  xml::Document doc = xml::Document::with_root("a");
  doc.root().add_element("b").add_element("c");
  const std::string out =
      xml::to_string(doc, {.pretty = true, .indent = 2, .declaration = false});
  EXPECT_NE(out.find("<a>\n  <b>\n    <c/>"), std::string::npos) << out;
}

TEST(XmlWriter, TextOnlyElementsStayInline) {
  xml::Document doc = xml::Document::with_root("f");
  doc.root().add_text("0.001 * P");
  const std::string out =
      xml::to_string(doc, {.pretty = true, .indent = 2, .declaration = false});
  EXPECT_EQ(out, "<f>0.001 * P</f>\n");
}

}  // namespace
