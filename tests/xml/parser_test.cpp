// XML parser: structure, attributes, entities, CDATA, comments, errors.
#include <gtest/gtest.h>

#include "prophet/xml/parser.hpp"
#include "prophet/xml/writer.hpp"

namespace xml = prophet::xml;

namespace {

TEST(XmlParser, MinimalDocument) {
  const xml::Document doc = xml::parse("<root/>");
  ASSERT_TRUE(doc.has_root());
  EXPECT_EQ(doc.root().name(), "root");
  EXPECT_TRUE(doc.root().children().empty());
}

TEST(XmlParser, DeclarationFields) {
  const xml::Document doc =
      xml::parse("<?xml version=\"1.1\" encoding=\"ascii\"?><r/>");
  EXPECT_EQ(doc.version(), "1.1");
  EXPECT_EQ(doc.encoding(), "ascii");
}

TEST(XmlParser, DefaultDeclaration) {
  const xml::Document doc = xml::parse("<r/>");
  EXPECT_EQ(doc.version(), "1.0");
  EXPECT_EQ(doc.encoding(), "UTF-8");
}

TEST(XmlParser, Attributes) {
  const xml::Document doc =
      xml::parse("<node id=\"n1\" kind='action' name=\"A 1\"/>");
  EXPECT_EQ(doc.root().attr_or("id", ""), "n1");
  EXPECT_EQ(doc.root().attr_or("kind", ""), "action");
  EXPECT_EQ(doc.root().attr_or("name", ""), "A 1");
  EXPECT_FALSE(doc.root().attr("missing").has_value());
}

TEST(XmlParser, AttributeOrderPreserved) {
  const xml::Document doc = xml::parse("<n z=\"1\" a=\"2\" m=\"3\"/>");
  const auto& attrs = doc.root().attributes();
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].name, "z");
  EXPECT_EQ(attrs[1].name, "a");
  EXPECT_EQ(attrs[2].name, "m");
}

TEST(XmlParser, NestedElements) {
  const xml::Document doc = xml::parse(
      "<model><diagrams><diagram id=\"d1\"/><diagram id=\"d2\"/>"
      "</diagrams></model>");
  const auto* diagrams = doc.root().child("diagrams");
  ASSERT_NE(diagrams, nullptr);
  EXPECT_EQ(diagrams->children_named("diagram").size(), 2u);
}

TEST(XmlParser, TextContent) {
  const xml::Document doc = xml::parse("<f>0.001 * P</f>");
  EXPECT_EQ(doc.root().text(), "0.001 * P");
}

TEST(XmlParser, PredefinedEntities) {
  const xml::Document doc =
      xml::parse("<g guard=\"GV &gt; 0 &amp;&amp; P &lt; 5\">&quot;&apos;</g>");
  EXPECT_EQ(doc.root().attr_or("guard", ""), "GV > 0 && P < 5");
  EXPECT_EQ(doc.root().text(), "\"'");
}

TEST(XmlParser, NumericCharacterReferences) {
  const xml::Document doc = xml::parse("<t>&#65;&#x42;</t>");
  EXPECT_EQ(doc.root().text(), "AB");
}

TEST(XmlParser, UnicodeCharacterReference) {
  const xml::Document doc = xml::parse("<t>&#956;</t>");
  EXPECT_EQ(doc.root().text(), "\xCE\xBC");  // U+03BC mu in UTF-8
}

TEST(XmlParser, CData) {
  const xml::Document doc =
      xml::parse("<code><![CDATA[if (a < b && c > d) { x = 1; }]]></code>");
  EXPECT_EQ(doc.root().text(), "if (a < b && c > d) { x = 1; }");
}

TEST(XmlParser, CommentsArePreserved) {
  const xml::Document doc = xml::parse("<r><!-- note --><x/></r>");
  ASSERT_EQ(doc.root().children().size(), 2u);
  EXPECT_EQ(doc.root().children()[0]->kind(), xml::NodeKind::Comment);
}

TEST(XmlParser, WhitespaceBetweenElementsDropped) {
  const xml::Document doc = xml::parse("<r>\n  <a/>\n  <b/>\n</r>");
  EXPECT_EQ(doc.root().children().size(), 2u);
}

TEST(XmlParser, MixedContentKeepsSubstantiveText) {
  const xml::Document doc = xml::parse("<r>hello <b/> world</r>");
  EXPECT_EQ(doc.root().element_count(), 1u);
  EXPECT_EQ(doc.root().text(), "hello  world");
}

TEST(XmlParser, ProcessingInstructionsSkipped) {
  const xml::Document doc = xml::parse("<r><?pi data?><x/></r>");
  EXPECT_EQ(doc.root().element_count(), 1u);
}

// --- Error cases -------------------------------------------------------------

TEST(XmlParserErrors, MismatchedTags) {
  EXPECT_THROW((void)xml::parse("<a><b></a></b>"), xml::ParseError);
}

TEST(XmlParserErrors, UnterminatedElement) {
  EXPECT_THROW((void)xml::parse("<a><b/>"), xml::ParseError);
}

TEST(XmlParserErrors, ContentAfterRoot) {
  EXPECT_THROW((void)xml::parse("<a/><b/>"), xml::ParseError);
}

TEST(XmlParserErrors, MissingRoot) {
  EXPECT_THROW((void)xml::parse("   "), xml::ParseError);
}

TEST(XmlParserErrors, DuplicateAttribute) {
  EXPECT_THROW((void)xml::parse("<a x=\"1\" x=\"2\"/>"), xml::ParseError);
}

TEST(XmlParserErrors, UnquotedAttribute) {
  EXPECT_THROW((void)xml::parse("<a x=1/>"), xml::ParseError);
}

TEST(XmlParserErrors, UnknownEntity) {
  EXPECT_THROW((void)xml::parse("<a>&nope;</a>"), xml::ParseError);
}

TEST(XmlParserErrors, MalformedCharReference) {
  EXPECT_THROW((void)xml::parse("<a>&#xZZ;</a>"), xml::ParseError);
}

TEST(XmlParserErrors, CharReferenceOutOfRange) {
  EXPECT_THROW((void)xml::parse("<a>&#x110000;</a>"), xml::ParseError);
}

TEST(XmlParserErrors, DoctypeRejected) {
  EXPECT_THROW((void)xml::parse("<!DOCTYPE html><a/>"), xml::ParseError);
}

TEST(XmlParserErrors, LtInAttributeValue) {
  EXPECT_THROW((void)xml::parse("<a x=\"<\"/>"), xml::ParseError);
}

TEST(XmlParserErrors, ReportsLineAndColumn) {
  try {
    (void)xml::parse("<a>\n<b>\n</c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const xml::ParseError& error) {
    EXPECT_EQ(error.line(), 3u);
    EXPECT_GT(error.column(), 0u);
  }
}

// --- Round-trip property ------------------------------------------------------

class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, ParseWriteParseIsStable) {
  const xml::Document first = xml::parse(GetParam());
  const std::string written = xml::to_string(first);
  const xml::Document second = xml::parse(written);
  EXPECT_TRUE(xml::deep_equal(first, second))
      << "original: " << GetParam() << "\nwritten: " << written;
  // And writing again is byte-stable.
  EXPECT_EQ(written, xml::to_string(second));
}

INSTANTIATE_TEST_SUITE_P(
    Documents, XmlRoundTrip,
    ::testing::Values(
        "<root/>",
        "<a><b/><c/></a>",
        "<a x=\"1\" y=\"two\"><b z=\"&lt;&gt;&amp;\"/></a>",
        "<f>0.000001 * P * P + 0.001</f>",
        "<code><![CDATA[GV = 3; P = 16;]]></code>",
        "<r><!-- c --><a>t</a></r>",
        "<deep><l1><l2><l3><l4 a=\"b\"/></l3></l2></l1></deep>",
        "<m><v n=\"GV\" t=\"Real\"/><v n=\"P\" t=\"Real\"/></m>"));

}  // namespace
