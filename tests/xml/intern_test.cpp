// The process-wide string intern pool and its use by the DOM: canonical
// identity, thread safety, and interned element/attribute names.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "prophet/xml/dom.hpp"
#include "prophet/xml/intern.hpp"
#include "prophet/xml/parser.hpp"

namespace xml = prophet::xml;

namespace {

TEST(Intern, EqualInputsShareOneCanonicalString) {
  const std::string& a = xml::intern("prophet:model");
  const std::string& b = xml::intern(std::string("prophet:") + "model");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a, "prophet:model");
  const std::string& c = xml::intern("prophet:model2");
  EXPECT_NE(&a, &c);
}

TEST(Intern, CountGrowsOnlyForNewSpellings) {
  const std::size_t before = xml::intern_count();
  (void)xml::intern("intern-count-probe-1");
  (void)xml::intern("intern-count-probe-2");
  (void)xml::intern("intern-count-probe-1");
  EXPECT_EQ(xml::intern_count(), before + 2);
}

TEST(Intern, ConcurrentInterningYieldsOneIdentityPerString) {
  // Many threads intern the same small vocabulary; every thread must
  // observe the same canonical addresses.
  constexpr int kThreads = 8;
  std::vector<std::vector<const std::string*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int round = 0; round < 200; ++round) {
        const std::string name =
            "concurrent-intern-" + std::to_string(round % 10);
        seen[t].push_back(&xml::intern(name));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[t], seen[0]) << "thread " << t;
  }
}

TEST(Intern, ElementNamesAreInterned) {
  const xml::Element a("interned-tag-name");
  const xml::Element b("interned-tag-name");
  // Same canonical storage, element-owned nothing.
  EXPECT_EQ(&a.name(), &b.name());
}

TEST(Intern, AttributeNamesAreViewsIntoThePool) {
  xml::Element element("e");
  element.set_attr("id", "1");
  element.set_attr("id", "2");  // overwrite keeps one attribute
  element.set_attr("kind", "action");
  ASSERT_EQ(element.attributes().size(), 2u);
  EXPECT_EQ(element.attributes()[0].name.data(),
            xml::intern("id").data());
  EXPECT_EQ(element.attributes()[0].value, "2");
  EXPECT_EQ(*element.attr("kind"), "action");
}

TEST(Intern, ParsedDocumentsShareNameStorage) {
  const xml::Document doc = xml::parse(
      "<root><node id=\"1\" kind=\"a\"/><node id=\"2\" kind=\"b\"/></root>");
  const auto nodes = doc.root().children_named("node");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(&nodes[0]->name(), &nodes[1]->name());
  EXPECT_EQ(nodes[0]->attributes()[0].name.data(),
            nodes[1]->attributes()[0].name.data());
  EXPECT_EQ(*nodes[1]->attr("id"), "2");
}

}  // namespace
