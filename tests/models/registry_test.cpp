// Registry behaviour: reference parsing, knob overrides, metadata
// completeness, and the guarantee every registered model is well-formed
// (checker-clean) and sweepable over its default grid.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "prophet/check/checker.hpp"
#include "prophet/models/builtins.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/xmi/xmi.hpp"

namespace models = prophet::models;

namespace {

TEST(ParseReference, BareName) {
  const auto reference = models::parse_reference("@kernel6");
  EXPECT_EQ(reference.name, "kernel6");
  EXPECT_TRUE(reference.knobs.empty());
}

TEST(ParseReference, KnobAssignments) {
  const auto reference =
      models::parse_reference("@kernel6(n=128, m=2, c=1e-9)");
  EXPECT_EQ(reference.name, "kernel6");
  ASSERT_EQ(reference.knobs.size(), 3u);
  EXPECT_EQ(reference.knobs.at("n"), 128.0);
  EXPECT_EQ(reference.knobs.at("m"), 2.0);
  EXPECT_EQ(reference.knobs.at("c"), 1e-9);
}

TEST(ParseReference, MalformedReferencesThrow) {
  EXPECT_THROW((void)models::parse_reference("kernel6"),
               std::invalid_argument);
  EXPECT_THROW((void)models::parse_reference("@"), std::invalid_argument);
  EXPECT_THROW((void)models::parse_reference("@k(n=1"),
               std::invalid_argument);
  EXPECT_THROW((void)models::parse_reference("@k(n)"),
               std::invalid_argument);
  EXPECT_THROW((void)models::parse_reference("@k(n=abc)"),
               std::invalid_argument);
  EXPECT_THROW((void)models::parse_reference("@k(n=1, n=2)"),
               std::invalid_argument);
}

TEST(Registry, BuiltinContainsTheWorkloadLibrary) {
  const auto& registry = models::Registry::builtin();
  const auto names = registry.names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* expected :
       {"sample", "kernel6", "kernel6-detailed", "pingpong", "synthetic",
        "random", "stencil2d", "allreduce", "masterworker", "pipeline"}) {
    EXPECT_TRUE(have.count(expected)) << "missing built-in: " << expected;
  }
  EXPECT_GE(registry.size(), 10u);
}

TEST(Registry, UnknownModelErrorListsAvailable) {
  const auto& registry = models::Registry::builtin();
  try {
    (void)registry.make("@nope");
    FAIL() << "make() should have thrown";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown built-in model '@nope'"),
              std::string::npos);
    EXPECT_NE(what.find("@kernel6"), std::string::npos);
  }
}

TEST(Registry, UnknownKnobErrorListsKnobs) {
  const auto& registry = models::Registry::builtin();
  try {
    (void)registry.make("@kernel6(bogus=1)");
    FAIL() << "make() should have thrown";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no knob 'bogus'"), std::string::npos);
    EXPECT_NE(what.find("n, m, c"), std::string::npos);
  }
}

TEST(Registry, KnobOverridesReachTheFactory) {
  const auto& registry = models::Registry::builtin();
  const auto small = registry.make("@kernel6(n=8, m=1)");
  // N and M are globals initialized from the knobs.
  EXPECT_EQ(small.variable("N")->initializer, "8");
  EXPECT_EQ(small.variable("M")->initializer, "1");
  const auto defaults = registry.make("@kernel6");
  EXPECT_EQ(defaults.variable("N")->initializer, "64");
}

TEST(Registry, DuplicateRegistrationThrows) {
  models::Registry registry;
  models::ModelInfo info;
  info.name = "m";
  info.factory = [](const models::KnobValues&) {
    return models::kernel6_model(4, 1, 1e-9);
  };
  registry.add(info);
  EXPECT_THROW(registry.add(info), std::invalid_argument);
}

TEST(Registry, MissingNameOrFactoryThrows) {
  models::Registry registry;
  models::ModelInfo nameless;
  nameless.factory = [](const models::KnobValues&) {
    return models::kernel6_model(4, 1, 1e-9);
  };
  EXPECT_THROW(registry.add(nameless), std::invalid_argument);
  models::ModelInfo factoryless;
  factoryless.name = "f";
  EXPECT_THROW(registry.add(factoryless), std::invalid_argument);
}

TEST(Registry, EveryEntryHasCompleteMetadata) {
  for (const auto& entry : models::Registry::builtin().entries()) {
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    EXPECT_FALSE(entry.comm_pattern.empty()) << entry.name;
    EXPECT_FALSE(entry.scaling.empty()) << entry.name;
    EXPECT_FALSE(entry.default_grid.empty()) << entry.name;
    // The default grid must parse against the entry's default params.
    EXPECT_NO_THROW((void)prophet::pipeline::ScenarioGrid::parse(
        entry.default_grid, entry.default_params))
        << entry.name << ": grid '" << entry.default_grid << "'";
    for (const auto& knob : entry.knobs) {
      EXPECT_FALSE(knob.description.empty())
          << entry.name << " knob " << knob.name;
    }
  }
}

TEST(Registry, EveryEntryBuildsACheckerCleanModel) {
  const prophet::check::ModelChecker checker;
  for (const auto& entry : models::Registry::builtin().entries()) {
    const auto model = entry.make();
    const auto diagnostics = checker.check(model);
    EXPECT_TRUE(diagnostics.ok())
        << "@" << entry.name << ":\n" << diagnostics.to_string();
  }
}

TEST(Registry, EveryEntrySurvivesXmiRoundTrip) {
  for (const auto& entry : models::Registry::builtin().entries()) {
    const auto model = entry.make();
    const std::string xmi = prophet::xmi::to_xml(model);
    const auto reparsed = prophet::xmi::from_xml(xmi);
    EXPECT_EQ(prophet::xmi::to_xml(reparsed), xmi)
        << "@" << entry.name << " does not round-trip";
  }
}

TEST(Registry, DescribeListsEveryEntry) {
  const auto& registry = models::Registry::builtin();
  const std::string text = registry.describe();
  for (const auto& name : registry.names()) {
    EXPECT_NE(text.find("@" + name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("knobs:"), std::string::npos);
  EXPECT_NE(text.find("grid:"), std::string::npos);
}

TEST(Registry, AvailableMatchesNames) {
  const auto& registry = models::Registry::builtin();
  std::string expected;
  for (const auto& name : registry.names()) {
    if (!expected.empty()) {
      expected += ", ";
    }
    expected += "@" + name;
  }
  EXPECT_EQ(registry.available(), expected);
}

TEST(Registry, FactoriesAreDeterministic) {
  const auto& registry = models::Registry::builtin();
  for (const auto& entry : registry.entries()) {
    const std::string a = prophet::xmi::to_xml(entry.make());
    const std::string b = prophet::xmi::to_xml(entry.make());
    EXPECT_EQ(a, b) << "@" << entry.name << " is not deterministic";
  }
}

}  // namespace
