// lower::ModelProgram: the shared lowering layer behind every backend.
// Differential coverage: for every registry workload both backends must
// observe the *same* lowering (pointer-equal when shared, count-equal
// when lowered independently) and predict bit-identically whether
// prepared from a model or from a shared lowering.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "prophet/analytic/analytic.hpp"
#include "prophet/analytic/backend.hpp"
#include "prophet/estimator/backend.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/lower/lower.hpp"
#include "prophet/models/builtins.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/uml/builder.hpp"

namespace analytic = prophet::analytic;
namespace estimator = prophet::estimator;
namespace interp = prophet::interp;
namespace lower = prophet::lower;
namespace machine = prophet::machine;
namespace models = prophet::models;
namespace uml = prophet::uml;

namespace {

machine::SystemParameters params_np(int np, int nodes = 1, int ppn = 1) {
  machine::SystemParameters params;
  params.processes = np;
  params.nodes = nodes;
  params.processors_per_node = ppn;
  return params;
}

// --- TagKind table -----------------------------------------------------------

TEST(TagKind, RoundTripsThroughNameAndBack) {
  for (std::size_t i = 0; i < lower::kTagKindCount; ++i) {
    const auto kind = static_cast<lower::TagKind>(i);
    const auto back = lower::tag_kind(lower::tag_name(kind));
    ASSERT_TRUE(back.has_value()) << lower::tag_name(kind);
    EXPECT_EQ(*back, kind);
  }
}

TEST(TagKind, UnknownTagNamesAreNotExpressionTags) {
  EXPECT_FALSE(lower::tag_kind("code").has_value());
  EXPECT_FALSE(lower::tag_kind("id").has_value());
  EXPECT_FALSE(lower::tag_kind("").has_value());
  EXPECT_FALSE(lower::tag_kind("costs").has_value());
}

TEST(TagKind, NamedAccessorsAliasTheTagArray) {
  const uml::Model model = models::sample_model();
  const auto program = lower::lower(model);
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      const lower::NodePrograms& programs = program->at(*node);
      EXPECT_EQ(&programs.cost(), &programs.tag(lower::TagKind::Cost));
      EXPECT_EQ(&programs.dest(), &programs.tag(lower::TagKind::Dest));
      EXPECT_EQ(&programs.source(), &programs.tag(lower::TagKind::Source));
      EXPECT_EQ(&programs.size(), &programs.tag(lower::TagKind::Size));
      EXPECT_EQ(&programs.root(), &programs.tag(lower::TagKind::Root));
      EXPECT_EQ(&programs.iterations(),
                &programs.tag(lower::TagKind::Iterations));
      EXPECT_EQ(&programs.itercost(), &programs.tag(lower::TagKind::IterCost));
      EXPECT_EQ(&programs.num_threads(),
                &programs.tag(lower::TagKind::NumThreads));
    }
  }
}

// --- ModelProgram structure --------------------------------------------------

TEST(ModelProgram, CoversEveryNodeOfEveryDiagram) {
  const uml::Model model = models::sample_model();
  const auto program = lower::lower(model);
  EXPECT_EQ(&program->model(), &model);
  std::size_t nodes = 0;
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      EXPECT_GT(program->at(*node).uid, 0);
      ++nodes;
    }
  }
  EXPECT_EQ(program->stats().nodes, nodes);
  // np/nt/nn/ppn occupy the first slots of every model's slot space.
  EXPECT_GE(program->slot_count(), 4u);
  EXPECT_EQ(program->stats().slots, program->slot_count());
}

TEST(ModelProgram, ForeignNodeIsRejected) {
  const auto program = lower::lower(models::sample_model());
  const uml::Model other = models::sample_model();
  const uml::Node& foreign = **other.main_diagram()->nodes().begin();
  EXPECT_THROW((void)program->at(foreign), std::out_of_range);
}

TEST(ModelProgram, UidOfMatchesInterpreterAndRejectsUnknownIds) {
  const uml::Model model = models::sample_model();
  const auto program = lower::lower(model);
  const interp::Interpreter interpreter(model);
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      EXPECT_EQ(program->uid_of(node->id()), interpreter.uid_of(node->id()));
    }
  }
  EXPECT_THROW((void)program->uid_of("zz"), lower::LowerError);
}

TEST(ModelProgram, OwningLowerKeepsTheModelAlive) {
  lower::ModelProgramPtr program = lower::lower(models::sample_model());
  // The temporary is gone; the program's model reference must not dangle.
  EXPECT_NE(program->model().main_diagram(), nullptr);
  EXPECT_GT(program->stats().nodes, 0u);
  EXPECT_GT(program->stats().expr_programs, 0u);
  EXPECT_GT(program->stats().bytecode_bytes, 0u);
}

TEST(ModelProgram, LoweringErrorsCarryTheBackendMessageText) {
  uml::ModelBuilder mb("bad");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("1 +");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const std::string node_id = a.id();
  const uml::Model model = std::move(mb).build();
  try {
    (void)lower::lower(model);
    FAIL() << "expected LowerError";
  } catch (const lower::LowerError& error) {
    // The same text InterpretError/AnalyticError carried before the
    // shared layer existed — wrapping preserves what() verbatim.
    EXPECT_NE(
        std::string(error.what()).find("tag 'cost' of node " + node_id),
        std::string::npos)
        << error.what();
  }
}

// --- One lowering behind every backend ---------------------------------------

TEST(SharedLowering, BothBackendsConsumeTheSameProgramInstance) {
  for (const auto& entry : models::Registry::builtin().entries()) {
    const uml::Model model = entry.make();
    const lower::ModelProgramPtr program = lower::lower(model);
    const auto sim = analytic::SimulationBackend().prepare(program);
    const auto ana = analytic::AnalyticBackend().prepare(program);
    // The API contract of the redesign: backends do not lower, so a
    // future backend shares this exact instance too.
    EXPECT_EQ(sim->lowering().get(), program.get()) << entry.name;
    EXPECT_EQ(ana->lowering().get(), program.get()) << entry.name;
  }
}

TEST(SharedLowering, IndependentPreparesReportIdenticalCounts) {
  for (const auto& entry : models::Registry::builtin().entries()) {
    const uml::Model model = entry.make();
    const auto sim = analytic::SimulationBackend().prepare(model);
    const auto ana = analytic::AnalyticBackend().prepare(model);
    const estimator::PrepareStats a = sim->prepare_stats();
    const estimator::PrepareStats b = ana->prepare_stats();
    EXPECT_EQ(a.expr_programs, b.expr_programs) << entry.name;
    EXPECT_EQ(a.nodes, b.nodes) << entry.name;
    EXPECT_EQ(a.slots, b.slots) << entry.name;
    EXPECT_EQ(a.bytecode_bytes, b.bytecode_bytes) << entry.name;
    // And both agree with a third, direct lowering.
    const auto direct = lower::lower(model);
    EXPECT_EQ(a.nodes, direct->stats().nodes) << entry.name;
    EXPECT_EQ(a.slots, direct->stats().slots) << entry.name;
    EXPECT_EQ(a.expr_programs, direct->stats().expr_programs) << entry.name;
    EXPECT_EQ(a.bytecode_bytes, direct->stats().bytecode_bytes) << entry.name;
  }
}

TEST(SharedLowering, PredictionsAreBitIdenticalToPerBackendLowering) {
  for (const auto& entry : models::Registry::builtin().entries()) {
    const uml::Model model = entry.make();
    const lower::ModelProgramPtr program = lower::lower(model);
    const auto params = entry.default_params;
    for (const estimator::BackendKind kind :
         {estimator::BackendKind::Simulation,
          estimator::BackendKind::Analytic}) {
      const auto backend = analytic::make_backend(kind);
      const auto shared = backend->prepare(program);
      const auto own = backend->prepare(model);
      const auto from_shared = shared->estimate(params);
      const auto from_own = own->estimate(params);
      EXPECT_EQ(from_shared.predicted_time, from_own.predicted_time)
          << entry.name << " @ " << backend->name();
      EXPECT_EQ(from_shared.events, from_own.events) << entry.name;
      EXPECT_EQ(from_shared.per_process_finish, from_own.per_process_finish)
          << entry.name;
    }
  }
}

TEST(SharedLowering, EstimatorConstructedFromSharedLoweringMatchesDirect) {
  const uml::Model model = models::kernel6_model(64, 16, 1e-8);
  const auto program = lower::lower(model);
  const analytic::AnalyticEstimator from_program(program);
  const analytic::AnalyticEstimator from_model(model);
  EXPECT_EQ(from_program.lowering().get(), program.get());
  const auto params = params_np(4, 2, 2);
  EXPECT_EQ(from_program.evaluate(params).predicted_time,
            from_model.evaluate(params).predicted_time);
  EXPECT_EQ(from_program.expr_program_count(), from_model.expr_program_count());
}

TEST(SharedLowering, NullProgramsAreRejected) {
  EXPECT_THROW(analytic::AnalyticEstimator(lower::ModelProgramPtr()),
               analytic::AnalyticError);
  EXPECT_THROW((void)analytic::SimulationBackend().prepare(
                   lower::ModelProgramPtr()),
               interp::InterpretError);
}

}  // namespace
