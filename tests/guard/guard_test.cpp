// Unit tests for the guard module: limit bookkeeping, cooperative
// cancellation, budget chaining and deterministic fault injection.
#include "prophet/guard/guard.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace guard = prophet::guard;

TEST(Limits, DefaultBoundsNothing) {
  const guard::Limits limits;
  EXPECT_FALSE(limits.any());
}

TEST(Limits, AnyDetectsEachBound) {
  guard::Limits limits;
  limits.wall_seconds = 1;
  EXPECT_TRUE(limits.any());
  limits = {};
  limits.max_sim_events = 1;
  EXPECT_TRUE(limits.any());
  limits = {};
  limits.max_vm_instructions = 1;
  EXPECT_TRUE(limits.any());
  limits = {};
  limits.max_replay_events = 1;
  EXPECT_TRUE(limits.any());
  limits = {};
  limits.max_loop_trips = 1;
  EXPECT_TRUE(limits.any());
}

TEST(Limits, LimitNames) {
  EXPECT_EQ(guard::to_string(guard::LimitKind::WallClock), "wall_clock");
  EXPECT_EQ(guard::to_string(guard::LimitKind::SimEvents), "sim_events");
  EXPECT_EQ(guard::to_string(guard::LimitKind::VmInstructions),
            "vm_instructions");
  EXPECT_EQ(guard::to_string(guard::LimitKind::ReplayEvents),
            "replay_events");
  EXPECT_EQ(guard::to_string(guard::LimitKind::LoopTrips), "loop_trips");
}

TEST(Budget, UnlimitedBudgetNeverTrips) {
  guard::Budget budget;
  for (int i = 0; i < 10000; ++i) {
    budget.charge_sim_events(1, "sim-engine");
    budget.charge_vm_instructions(10, "expr-vm");
    budget.charge_replay_events(1, "analytic-replay");
    budget.charge_loop_trips(1, "interp-loop");
    budget.checkpoint("test");
  }
  const guard::Usage usage = budget.usage();
  EXPECT_EQ(usage.sim_events, 10000u);
  EXPECT_EQ(usage.vm_instructions, 100000u);
  EXPECT_EQ(usage.replay_events, 10000u);
  EXPECT_EQ(usage.loop_trips, 10000u);
}

TEST(Budget, SimEventLimitTrips) {
  guard::Limits limits;
  limits.max_sim_events = 100;
  guard::Budget budget(limits);
  for (int i = 0; i < 100; ++i) {
    budget.charge_sim_events(1, "sim-engine");
  }
  try {
    budget.charge_sim_events(1, "sim-engine");
    FAIL() << "expected ResourceExhausted";
  } catch (const guard::ResourceExhausted& error) {
    EXPECT_EQ(error.limit(), guard::LimitKind::SimEvents);
    EXPECT_EQ(error.stage(), "sim-engine");
    EXPECT_EQ(error.usage().sim_events, 101u);
    EXPECT_NE(std::string(error.what()).find("sim_events"),
              std::string::npos);
  }
}

TEST(Budget, VmInstructionLimitTrips) {
  guard::Limits limits;
  limits.max_vm_instructions = 50;
  guard::Budget budget(limits);
  EXPECT_THROW(budget.charge_vm_instructions(51, "expr-vm"),
               guard::ResourceExhausted);
}

TEST(Budget, ReplayAndLoopLimitsTrip) {
  guard::Limits limits;
  limits.max_replay_events = 5;
  limits.max_loop_trips = 7;
  guard::Budget budget(limits);
  EXPECT_THROW(budget.charge_replay_events(6, "analytic-replay"),
               guard::ResourceExhausted);
  EXPECT_THROW(budget.charge_loop_trips(8, "interp-loop"),
               guard::ResourceExhausted);
}

TEST(Budget, WallClockDeadlineTrips) {
  guard::Limits limits;
  limits.wall_seconds = 0.05;
  guard::Budget budget(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  try {
    // checkpoint() reads the clock unconditionally, so one call suffices.
    budget.checkpoint("sim-engine");
    FAIL() << "expected ResourceExhausted";
  } catch (const guard::ResourceExhausted& error) {
    EXPECT_EQ(error.limit(), guard::LimitKind::WallClock);
    EXPECT_GE(error.usage().elapsed_seconds, 0.05);
  }
  EXPECT_TRUE(budget.exhausted());
}

TEST(Budget, CancelTripsNextCharge) {
  guard::Budget budget;
  budget.charge_sim_events(1, "sim-engine");
  budget.cancel();
  EXPECT_TRUE(budget.cancel_requested());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_THROW(budget.charge_sim_events(1, "sim-engine"), guard::Cancelled);
  EXPECT_THROW(budget.checkpoint("sim-engine"), guard::Cancelled);
}

TEST(Budget, ParentCancellationPropagates) {
  guard::Budget sweep;
  guard::Budget job({}, &sweep);
  EXPECT_FALSE(job.cancel_requested());
  sweep.cancel();
  EXPECT_TRUE(job.cancel_requested());
  EXPECT_TRUE(job.exhausted());
  EXPECT_THROW(job.charge_sim_events(1, "sim-engine"), guard::Cancelled);
}

TEST(Budget, ParentDeadlinePropagatesAsWallClock) {
  guard::Limits sweep_limits;
  sweep_limits.wall_seconds = 0.05;
  guard::Budget sweep(sweep_limits);
  guard::Budget job({}, &sweep);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  try {
    job.checkpoint("sim-engine");
    FAIL() << "expected ResourceExhausted";
  } catch (const guard::ResourceExhausted& error) {
    EXPECT_EQ(error.limit(), guard::LimitKind::WallClock);
    EXPECT_EQ(error.stage(), "sim-engine");
  }
  EXPECT_TRUE(job.exhausted());
}

TEST(Budget, CancelAtSimEventFiresDeterministically) {
  guard::Budget budget;
  budget.cancel_at_sim_event(10);
  for (int i = 0; i < 9; ++i) {
    budget.charge_sim_events(1, "sim-engine");
  }
  EXPECT_THROW(budget.charge_sim_events(1, "sim-engine"), guard::Cancelled);
}

TEST(Budget, GuardErrorsAreNotCaughtAsLogicError) {
  // Guard errors derive from std::runtime_error so that evaluation-layer
  // catch blocks for domain errors do not swallow them.
  guard::Limits limits;
  limits.max_loop_trips = 1;
  guard::Budget budget(limits);
  try {
    budget.charge_loop_trips(2, "interp-loop");
    FAIL();
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FaultPlan, EmptyPlan) {
  guard::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.visit("parse");  // no rules: never fires
  EXPECT_TRUE(guard::FaultPlan::parse("").empty());
  EXPECT_FALSE(plan.cancel_at_event().has_value());
}

TEST(FaultPlan, EveryVisitRule) {
  guard::FaultPlan plan = guard::FaultPlan::parse("parse");
  EXPECT_FALSE(plan.empty());
  EXPECT_THROW(plan.visit("parse"), guard::FaultInjected);
  EXPECT_THROW(plan.visit("parse"), guard::FaultInjected);
  plan.visit("estimate");  // other sites unaffected
}

TEST(FaultPlan, NthVisitRule) {
  guard::FaultPlan plan = guard::FaultPlan::parse("estimate@3");
  plan.visit("estimate");
  plan.visit("estimate");
  try {
    plan.visit("estimate");
    FAIL() << "expected FaultInjected";
  } catch (const guard::FaultInjected& fault) {
    EXPECT_EQ(fault.site(), "estimate");
    EXPECT_EQ(fault.visit(), 3u);
  }
  plan.visit("estimate");  // fires on the third visit only
}

TEST(FaultPlan, ProbabilisticRuleIsSeedDeterministic) {
  // The same seed must fail the same visits; different seeds should
  // (with overwhelming probability over 200 visits) differ somewhere.
  const auto fire_pattern = [](std::uint64_t seed) {
    guard::FaultPlan plan = guard::FaultPlan::parse("estimate%0.5", seed);
    std::string pattern;
    for (int i = 0; i < 200; ++i) {
      try {
        plan.visit("estimate");
        pattern += '.';
      } catch (const guard::FaultInjected&) {
        pattern += 'X';
      }
    }
    return pattern;
  };
  EXPECT_EQ(fire_pattern(1), fire_pattern(1));
  EXPECT_NE(fire_pattern(1), fire_pattern(2));
  const std::string pattern = fire_pattern(7);
  EXPECT_NE(pattern.find('X'), std::string::npos);
  EXPECT_NE(pattern.find('.'), std::string::npos);
}

TEST(FaultPlan, CancelRule) {
  const guard::FaultPlan plan = guard::FaultPlan::parse("cancel@500");
  ASSERT_TRUE(plan.cancel_at_event().has_value());
  EXPECT_EQ(*plan.cancel_at_event(), 500u);
  const guard::FaultPlan bare = guard::FaultPlan::parse("cancel");
  ASSERT_TRUE(bare.cancel_at_event().has_value());
  EXPECT_EQ(*bare.cancel_at_event(), 1u);
}

TEST(FaultPlan, MultipleRules) {
  guard::FaultPlan plan = guard::FaultPlan::parse("parse@2, lower");
  plan.visit("parse");
  EXPECT_THROW(plan.visit("lower"), guard::FaultInjected);
  EXPECT_THROW(plan.visit("parse"), guard::FaultInjected);
}

TEST(FaultPlan, MalformedSpecsRejected) {
  EXPECT_THROW((void)guard::FaultPlan::parse("estimate@"),
               std::invalid_argument);
  EXPECT_THROW((void)guard::FaultPlan::parse("estimate@zero"),
               std::invalid_argument);
  EXPECT_THROW((void)guard::FaultPlan::parse("estimate%2"),
               std::invalid_argument);
  EXPECT_THROW((void)guard::FaultPlan::parse("estimate%-1"),
               std::invalid_argument);
  EXPECT_THROW((void)guard::FaultPlan::parse("@1"), std::invalid_argument);
}
