// Interpreter semantics: branches, loops, variables, code fragments,
// cost-function composition, system parameters, error handling.
#include <gtest/gtest.h>

#include "prophet/estimator/estimator.hpp"
#include "prophet/interp/interpreter.hpp"
#include "prophet/prophet.hpp"

namespace interp = prophet::interp;
namespace uml = prophet::uml;

namespace {

double estimate(const uml::Model& model,
                prophet::machine::SystemParameters params = {}) {
  interp::Interpreter interpreter(model);
  prophet::estimator::EstimationOptions no_trace;
  no_trace.collect_trace = false;
  const prophet::estimator::SimulationManager manager(params, no_trace);
  return manager.run(interpreter).predicted_time;
}

TEST(Interpreter, SequentialActionsAccumulate) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("0.5");
  uml::NodeRef b = d.action("B").cost("0.25");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, b, fin});
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 0.75);
}

TEST(Interpreter, TimeTagUsedWhenNoCost) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A");
  a.time(1.5);
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 1.5);
}

TEST(Interpreter, BranchTakesFirstTrueGuard) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real, "5");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef b = d.action("B").cost("2");
  uml::NodeRef merge = d.merge();
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "X > 3");   // true first
  d.flow(dec, b, "X > 0");   // also true, but not first
  d.flow(a, merge);
  d.flow(b, merge);
  d.flow(merge, fin);
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 1.0);
}

TEST(Interpreter, ElseBranchWhenNoGuardHolds) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real, "0");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A").cost("1");
  uml::NodeRef b = d.action("B").cost("2");
  uml::NodeRef merge = d.merge();
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "X > 3");
  d.flow(dec, b, "else");
  d.flow(a, merge);
  d.flow(b, merge);
  d.flow(merge, fin);
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 2.0);
}

TEST(Interpreter, StalledDecisionThrows) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real, "0");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A");
  uml::NodeRef b = d.action("B");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "X > 3");
  d.flow(dec, b, "X > 4");
  d.flow(a, fin);
  d.flow(b, fin);
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW(estimate(model), interp::InterpretError);
}

TEST(Interpreter, LoopRepeatsBody) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::NodeRef binit = body.initial();
  uml::NodeRef w = body.action("W").cost("0.1");
  uml::NodeRef bfin = body.final_node();
  body.sequence({binit, w, bfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef loop = main.loop("L", body, "5");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, loop, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  EXPECT_NEAR(estimate(model), 0.5, 1e-12);
}

TEST(Interpreter, LoopVariableDrivesCost) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::NodeRef binit = body.initial();
  uml::NodeRef w = body.action("W").cost("k + 1");
  uml::NodeRef bfin = body.final_node();
  body.sequence({binit, w, bfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef loop = main.loop("L", body, "4", "k");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, loop, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  // k = 0..3 -> costs 1+2+3+4 = 10.
  EXPECT_DOUBLE_EQ(estimate(model), 10.0);
}

TEST(Interpreter, NestedLoopsMultiply) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder inner = mb.diagram("inner");
  uml::NodeRef iinit = inner.initial();
  uml::NodeRef w = inner.action("W").cost("0.01");
  uml::NodeRef ifin = inner.final_node();
  inner.sequence({iinit, w, ifin});
  uml::DiagramBuilder outer = mb.diagram("outer");
  uml::NodeRef oinit = outer.initial();
  uml::NodeRef iloop = outer.loop("Inner", inner, "3", "j");
  uml::NodeRef ofin = outer.final_node();
  outer.sequence({oinit, iloop, ofin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef minit = main.initial();
  uml::NodeRef oloop = main.loop("Outer", outer, "4", "i");
  uml::NodeRef mfin = main.final_node();
  main.sequence({minit, oloop, mfin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  EXPECT_NEAR(estimate(model), 0.12, 1e-12);
}

TEST(Interpreter, TriangularLoopUsesOuterVariable) {
  // Inner trip count depends on the outer loop variable — the detailed
  // kernel-6 pattern (Fig. 3b).
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::NodeRef binit = body.initial();
  uml::NodeRef w = body.action("W").cost("1");
  uml::NodeRef bfin = body.final_node();
  body.sequence({binit, w, bfin});
  uml::DiagramBuilder mid = mb.diagram("mid");
  uml::NodeRef minit = mid.initial();
  uml::NodeRef inner = mid.loop("KLoop", body, "i + 1", "k");
  uml::NodeRef mfin = mid.final_node();
  mid.sequence({minit, inner, mfin});
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef init = main.initial();
  uml::NodeRef outer = main.loop("ILoop", mid, "4", "i");
  uml::NodeRef fin = main.final_node();
  main.sequence({init, outer, fin});
  uml::Model model = std::move(mb).build();
  model.set_main_diagram(main.id());
  // sum_{i=0..3} (i+1) = 10 executions of cost 1.
  EXPECT_DOUBLE_EQ(estimate(model), 10.0);
}

TEST(Interpreter, CodeFragmentAssignsGlobals) {
  uml::ModelBuilder mb("M");
  mb.global("X", uml::VariableType::Real, "0");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("0.1").code("X = 2 * 3;");
  uml::NodeRef b = d.action("B").cost("X");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, b, fin});
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 6.1);
}

TEST(Interpreter, CodeFragmentAssignsUndeclaredVariableThrows) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").code("ghost = 1;");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW(estimate(model), interp::InterpretError);
}

TEST(Interpreter, MalformedCodeFragmentRejectedAtConstruction) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").code("this is not an assignment");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW(interp::Interpreter interpreter(model),
               interp::InterpretError);
}

TEST(Interpreter, IntegerVariablesTruncate) {
  uml::ModelBuilder mb("M");
  mb.global("N", uml::VariableType::Integer, "0");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("0.0").code("N = 7 / 2;");
  uml::NodeRef b = d.action("B").cost("N");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, b, fin});
  // 7/2 = 3.5 truncated to 3 (matching the generated `long N`).
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 3.0);
}

TEST(Interpreter, CostFunctionComposition) {
  uml::ModelBuilder mb("M");
  mb.global("P", uml::VariableType::Real, "4");
  mb.function("F1", {}, "0.5 * P");
  mb.function("F2", {"x"}, "F1() + x");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("F2(1)");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build()), 3.0);
}

TEST(Interpreter, SystemParametersBound) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("np + nn + ppn + nt");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  prophet::machine::SystemParameters params;
  params.processes = 2;
  params.nodes = 2;
  params.processors_per_node = 3;
  params.threads_per_process = 4;
  // cost = 2+2+3+4 = 11 per process; both run concurrently (ppn covers).
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build(), params), 11.0);
}

TEST(Interpreter, PidVisibleInCosts) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("pid + 1");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  prophet::machine::SystemParameters params;
  params.processes = 3;
  params.nodes = 3;
  // Slowest process: pid=2 -> cost 3.
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build(), params), 3.0);
}

TEST(Interpreter, GlobalsSharedAcrossProcessesWithinRun) {
  // pid 0 writes GV before its action; because globals are shared (like
  // the file-scope globals of generated code), all processes see it.
  uml::ModelBuilder mb("M");
  mb.global("GV", uml::VariableType::Real, "1");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef w = d.action("W").cost("0.001").code("GV = 5;");
  uml::NodeRef m = d.merge();
  uml::NodeRef a = d.action("A").cost("GV");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, w, "pid == 0");
  d.flow(dec, m, "else");
  d.flow(w, m);
  d.flow(m, a);
  d.flow(a, fin);
  prophet::machine::SystemParameters params;
  params.processes = 2;
  params.nodes = 2;
  interp::Interpreter interpreter(std::move(mb).build());
  prophet::estimator::EstimationOptions no_trace;
  no_trace.collect_trace = false;
  const prophet::estimator::SimulationManager manager(params, no_trace);
  (void)manager.run(interpreter);
  EXPECT_DOUBLE_EQ(interpreter.global("GV"), 5.0);
}

TEST(Interpreter, GlobalsResetBetweenRuns) {
  const uml::Model model = prophet::models::sample_model();
  interp::Interpreter interpreter(model);
  prophet::estimator::EstimationOptions no_trace;
  no_trace.collect_trace = false;
  const prophet::estimator::SimulationManager manager({}, no_trace);
  const double first = manager.run(interpreter).predicted_time;
  const double second = manager.run(interpreter).predicted_time;
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(Interpreter, CallCostFunctionIntrospection) {
  const uml::Model model = prophet::models::sample_model();
  interp::Interpreter interpreter(model);
  prophet::machine::SystemParameters params;
  interpreter.on_run_start(params);
  // P initialized to 16: FA1 = 1e-6*256 + 1e-3.
  EXPECT_NEAR(interpreter.call_cost_function("FA1", {}), 0.001256, 1e-15);
  EXPECT_DOUBLE_EQ(interpreter.call_cost_function("FSA2", {2.0}), 0.002);
  EXPECT_THROW((void)interpreter.call_cost_function("nope", {}),
               interp::InterpretError);
}

TEST(Interpreter, UidAssignmentMatchesExplicitIds) {
  const uml::Model model = prophet::models::sample_model();
  interp::Interpreter interpreter(model);
  // A1 carries explicit id tag 1 (Fig. 8 numbering).
  EXPECT_EQ(interpreter.uid_of("n6"), 1);  // A1 is n6 (after SA nodes)
  EXPECT_THROW((void)interpreter.uid_of("zz"), interp::InterpretError);
}

TEST(Interpreter, ForkJoinOverlapsBranches) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef fork = d.fork();
  uml::NodeRef a = d.action("A").cost("2");
  uml::NodeRef b = d.action("B").cost("3");
  uml::NodeRef join = d.join();
  uml::NodeRef c = d.action("C").cost("1");
  uml::NodeRef fin = d.final_node();
  d.flow(init, fork);
  d.flow(fork, a);
  d.flow(fork, b);
  d.flow(a, join);
  d.flow(b, join);
  d.flow(join, c);
  d.flow(c, fin);
  prophet::machine::SystemParameters params;
  params.processors_per_node = 2;  // branches need two processors
  // max(2,3) + 1 = 4.
  EXPECT_DOUBLE_EQ(estimate(std::move(mb).build(), params), 4.0);
}

TEST(Interpreter, UnparseableCostRejectedAtConstruction) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("1 +");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW(interp::Interpreter interpreter(model),
               interp::InterpretError);
}

TEST(Interpreter, MissingSubdiagramRejectedAtConstruction) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef act = d.activity("X", "ghost");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, act, fin});
  const uml::Model model = std::move(mb).build();
  EXPECT_THROW(interp::Interpreter interpreter(model),
               interp::InterpretError);
}

}  // namespace
