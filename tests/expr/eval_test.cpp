// Evaluator: arithmetic, comparisons, short circuits, built-ins, user
// functions, errors; analysis; C++ emission semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "prophet/expr/analysis.hpp"
#include "prophet/expr/cppgen.hpp"
#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"

namespace expr = prophet::expr;

namespace {

double eval(const std::string& text, const expr::Environment& env =
                                         expr::empty_environment()) {
  return expr::evaluate(*expr::parse(text), env);
}

TEST(ExprEval, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(eval("10 % 4"), 2.0);
  EXPECT_DOUBLE_EQ(eval("7.5 % 2"), 1.5);  // fmod semantics
  EXPECT_DOUBLE_EQ(eval("-3 + 1"), -2.0);
}

TEST(ExprEval, DivisionByZeroFollowsIeee) {
  EXPECT_TRUE(std::isinf(eval("1 / 0")));
  EXPECT_TRUE(std::isnan(eval("0 / 0")));
}

TEST(ExprEval, Comparisons) {
  EXPECT_DOUBLE_EQ(eval("3 > 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval("3 < 2"), 0.0);
  EXPECT_DOUBLE_EQ(eval("2 >= 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval("2 <= 1"), 0.0);
  EXPECT_DOUBLE_EQ(eval("2 == 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval("2 != 2"), 0.0);
}

TEST(ExprEval, LogicalOperators) {
  EXPECT_DOUBLE_EQ(eval("1 && 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval("1 && 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval("0 || 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval("0 || 0"), 0.0);
  EXPECT_DOUBLE_EQ(eval("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval("!2"), 0.0);
}

TEST(ExprEval, ShortCircuitSkipsRightOperand) {
  // The right operand would throw (unknown variable) if evaluated.
  EXPECT_DOUBLE_EQ(eval("0 && nope"), 0.0);
  EXPECT_DOUBLE_EQ(eval("1 || nope"), 1.0);
  EXPECT_THROW(eval("1 && nope"), expr::EvalError);
}

TEST(ExprEval, Ternary) {
  EXPECT_DOUBLE_EQ(eval("1 ? 10 : 20"), 10.0);
  EXPECT_DOUBLE_EQ(eval("0 ? 10 : 20"), 20.0);
}

TEST(ExprEval, Builtins) {
  EXPECT_DOUBLE_EQ(eval("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval("abs(-3)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("min(2, 5)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("max(2, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("ceil(2.2)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("round(2.5)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("log2(8)"), 3.0);
  EXPECT_NEAR(eval("exp(log(5))"), 5.0, 1e-12);
  EXPECT_NEAR(eval("sin(0)"), 0.0, 1e-12);
  EXPECT_NEAR(eval("cos(0)"), 1.0, 1e-12);
}

TEST(ExprEval, BuiltinArityChecked) {
  EXPECT_THROW(eval("sqrt(1, 2)"), expr::EvalError);
  EXPECT_THROW(eval("pow(2)"), expr::EvalError);
}

TEST(ExprEval, Variables) {
  expr::MapEnvironment env;
  env.set("P", 16.0);
  EXPECT_DOUBLE_EQ(eval("0.000001 * P * P + 0.001", env), 0.001256);
  EXPECT_THROW(eval("Q", env), expr::EvalError);
}

TEST(ExprEval, UserFunctions) {
  expr::MapEnvironment env;
  env.set("P", 16.0);
  env.define("FA1", [](std::span<const double>) { return 0.25; });
  env.define("scale",
             [](std::span<const double> args) { return args[0] * 2; });
  EXPECT_DOUBLE_EQ(eval("FA1() + 1", env), 1.25);
  EXPECT_DOUBLE_EQ(eval("scale(P)", env), 32.0);
}

TEST(ExprEval, UserFunctionsShadowBuiltins) {
  expr::MapEnvironment env;
  env.define("sqrt", [](std::span<const double>) { return 99.0; });
  EXPECT_DOUBLE_EQ(eval("sqrt(16)", env), 99.0);
}

TEST(ExprEval, UnknownFunctionThrows) {
  EXPECT_THROW(eval("mystery(1)"), expr::EvalError);
}

TEST(ExprEval, BuiltinIntrospection) {
  EXPECT_EQ(expr::builtin_arity("sqrt"), 1);
  EXPECT_EQ(expr::builtin_arity("pow"), 2);
  EXPECT_FALSE(expr::builtin_arity("FA1").has_value());
  EXPECT_FALSE(expr::builtin_names().empty());
}

// --- Analysis ---------------------------------------------------------------

TEST(ExprAnalysis, FreeVariables) {
  const auto parsed = expr::parse("a + f(b, c * a) + 2");
  const auto vars = expr::free_variables(*parsed);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b", "c"}));
}

TEST(ExprAnalysis, CalledFunctions) {
  const auto parsed = expr::parse("FA1() + sqrt(FB2(x))");
  EXPECT_EQ(expr::called_functions(*parsed),
            (std::set<std::string>{"FA1", "FB2", "sqrt"}));
  EXPECT_EQ(expr::called_user_functions(*parsed),
            (std::set<std::string>{"FA1", "FB2"}));
}

// --- C++ emission -------------------------------------------------------------

TEST(ExprCppGen, Literals) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("1")), "1.0");
  EXPECT_EQ(expr::to_cpp(*expr::parse("2.5")), "2.5");
}

TEST(ExprCppGen, ArithmeticShape) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("0.000001*P*P + 0.001")),
            "9.9999999999999995e-07 * P * P + 0.001");
}

TEST(ExprCppGen, ModBecomesFmod) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("a % b")), "std::fmod(a, b)");
}

TEST(ExprCppGen, BuiltinsPrefixed) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("sqrt(P)")), "std::sqrt(P)");
  EXPECT_EQ(expr::to_cpp(*expr::parse("abs(x)")), "std::fabs(x)");
  EXPECT_EQ(expr::to_cpp(*expr::parse("min(a, b)")), "std::fmin(a, b)");
}

TEST(ExprCppGen, UserCallsUntouched) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("FSA2(pid)")), "FSA2(pid)");
}

TEST(ExprCppGen, ParenthesizationPreservesMeaning) {
  EXPECT_EQ(expr::to_cpp(*expr::parse("(a + b) * c")), "(a + b) * c");
  EXPECT_EQ(expr::to_cpp(*expr::parse("a - (b - c)")), "a - (b - c)");
}

/// Property: for pure-arithmetic expressions, evaluating the C++ text via
/// a second parse must equal direct evaluation (the emitted C++ has the
/// same structure, so reparsing it through the cost language is a valid
/// oracle — modulo std:: prefixes, which we strip by testing operator-only
/// expressions here).
class CppGenSemantics : public ::testing::TestWithParam<const char*> {};

TEST_P(CppGenSemantics, ReparsedCppValueMatches) {
  expr::MapEnvironment env;
  env.set("a", 3.5);
  env.set("b", -2.0);
  env.set("c", 7.0);
  const auto original = expr::parse(GetParam());
  const double direct = expr::evaluate(*original, env);
  std::string cpp = expr::to_cpp(*original);
  // Make the emitted text valid cost-language again.
  for (const char* prefix : {"std::fmod", "std::fmin", "std::fmax",
                             "std::fabs", "std::sqrt", "std::pow"}) {
    std::string bare = prefix + 5;  // strip "std::"
    std::size_t pos;
    while ((pos = cpp.find(prefix)) != std::string::npos) {
      cpp.replace(pos, std::string(prefix).size(), bare);
    }
  }
  // fmod/fmin/fmax/fabs are not cost-language builtins; map back.
  auto replace_all = [&cpp](const std::string& from, const std::string& to) {
    std::size_t pos;
    while ((pos = cpp.find(from)) != std::string::npos) {
      cpp.replace(pos, from.size(), to);
    }
  };
  replace_all("fmod", "mod_call");
  replace_all("fmin", "min");
  replace_all("fmax", "max");
  replace_all("fabs", "abs");
  expr::MapEnvironment env2;
  env2.set("a", 3.5);
  env2.set("b", -2.0);
  env2.set("c", 7.0);
  env2.define("mod_call", [](std::span<const double> args) {
    return std::fmod(args[0], args[1]);
  });
  const double via_cpp = expr::evaluate(*expr::parse(cpp), env2);
  EXPECT_DOUBLE_EQ(direct, via_cpp) << GetParam() << " -> " << cpp;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CppGenSemantics,
    ::testing::Values("a + b * c", "(a + b) * c", "a / b - c", "a % c",
                      "-a * b", "a < c && b < 0", "a > c || b > 0",
                      "a > 0 ? b : c", "min(a, c) + max(b, 0)",
                      "abs(b) + sqrt(c)", "pow(a, 2) - c",
                      "a - b - c", "a / b / c"));

}  // namespace
