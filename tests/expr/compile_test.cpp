// Bytecode compiler + VM: folding, slots, ambients, lazy errors, and the
// randomized differential test pinning bit-identity against the
// tree-walking evaluator (including NaN/inf/signed-zero edge cases and
// missing-identifier error behaviour).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "prophet/expr/compile.hpp"
#include "prophet/expr/eval.hpp"
#include "prophet/expr/parser.hpp"

namespace expr = prophet::expr;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Compiles and evaluates `text` with no bindings at all.
double run(const std::string& text) {
  const expr::SymbolTable table;
  const expr::Compiled program = expr::compile(*expr::parse(text), table);
  return program.eval({});
}

TEST(ExprCompile, ArithmeticMatchesTreeWalk) {
  for (const char* text :
       {"1 + 2 * 3", "(1 + 2) * 3", "10 / 4", "10 % 4", "7.5 % 2",
        "-3 + 1", "1 / 0", "3 > 2", "2 <= 1", "2 == 2", "2 != 2",
        "1 && 2", "1 && 0", "0 || 3", "!0", "!2", "1 ? 2 : 3",
        "0 ? 2 : 3", "sqrt(16)", "pow(2, 10)", "min(3, 4)", "max(3, 4)"}) {
    EXPECT_EQ(run(text),
              expr::evaluate(*expr::parse(text), expr::empty_environment()))
        << text;
  }
}

TEST(ExprCompile, ConstantExpressionsFoldToOneInstruction) {
  for (const char* text :
       {"1 + 2 * 3", "sqrt(16)", "2 < 3 && 4 < 5", "1 ? 42 : 0",
        "-(2 + 3)", "pow(2, 0.5) / log(2)"}) {
    const expr::SymbolTable table;
    const expr::Compiled program = expr::compile(*expr::parse(text), table);
    EXPECT_EQ(program.size(), 1u) << text << "\n" << program.disassemble();
    ASSERT_TRUE(program.constant().has_value()) << text;
    EXPECT_EQ(*program.constant(),
              expr::evaluate(*expr::parse(text), expr::empty_environment()))
        << text;
  }
}

TEST(ExprCompile, ShortCircuitConstantsDropDeadOperands) {
  // The dead side contains errors the tree walker never evaluates; the
  // compiled program must not raise them either.
  EXPECT_EQ(run("0 && nope"), 0.0);
  EXPECT_EQ(run("1 || nope"), 1.0);
  EXPECT_EQ(run("1 ? 7 : nope"), 7.0);
  EXPECT_EQ(run("0 ? nope : 7"), 7.0);
  EXPECT_EQ(run("0 && sqrt(1, 2)"), 0.0);
  EXPECT_THROW(run("1 && nope"), expr::EvalError);
}

TEST(ExprCompile, ExactIdentitiesSimplify) {
  expr::SymbolTable table;
  table.add_variable("x");
  for (const char* text : {"x * 1", "1 * x", "x / 1", "x - 0"}) {
    const expr::Compiled program = expr::compile(*expr::parse(text), table);
    EXPECT_EQ(program.size(), 1u) << text << "\n" << program.disassemble();
  }
}

TEST(ExprCompile, AddZeroIsNotSimplified) {
  // x + 0.0 maps -0.0 to +0.0, so folding it away would break
  // bit-identity with the tree walker.
  expr::SymbolTable table;
  const expr::Slot x = table.add_variable("x");
  const expr::Compiled program = expr::compile(*expr::parse("x + 0"), table);
  EXPECT_GT(program.size(), 1u);
  expr::SlotFrame frame(table);
  frame.set(x, -0.0);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  const double sum = program.eval(ctx);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(sum),
            std::bit_cast<std::uint64_t>(0.0));  // +0.0, not -0.0
}

TEST(ExprCompile, IdentityPreservesNegativeZeroAndNan) {
  expr::SymbolTable table;
  const expr::Slot x = table.add_variable("x");
  const expr::Compiled program = expr::compile(*expr::parse("x * 1"), table);
  expr::SlotFrame frame(table);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  frame.set(x, -0.0);
  EXPECT_TRUE(std::signbit(program.eval(ctx)));
  frame.set(x, kNan);
  EXPECT_TRUE(std::isnan(program.eval(ctx)));
}

TEST(ExprCompile, SlotsResolveWithoutStrings) {
  expr::SymbolTable table;
  const expr::Slot p = table.add_variable("P");
  const expr::Slot np = table.add_variable("np");
  const expr::Compiled program = expr::compile(
      *expr::parse("0.000001 * P * P + 0.001 + sqrt(P) / (np + 1)"), table);
  expr::SlotFrame frame(table);
  frame.set(p, 16.0);
  frame.set(np, 4.0);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();

  expr::MapEnvironment env;
  env.set("P", 16.0);
  env.set("np", 4.0);
  const double reference = expr::evaluate(
      *expr::parse("0.000001 * P * P + 0.001 + sqrt(P) / (np + 1)"), env);
  EXPECT_EQ(program.eval(ctx), reference);
  EXPECT_TRUE(program.references_slot(p));
  EXPECT_TRUE(program.references_slot(np));
}

TEST(ExprCompile, UnboundSlotThrowsTreeWalkMessage) {
  expr::SymbolTable table;
  const expr::Slot x = table.add_variable("x");
  const expr::Compiled program = expr::compile(*expr::parse("x + 1"), table);
  expr::SlotFrame frame(table);
  frame.unbind(x);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  try {
    (void)program.eval(ctx);
    FAIL() << "expected EvalError";
  } catch (const expr::EvalError& error) {
    EXPECT_STREQ(error.what(), "unknown variable 'x'");
  }
}

TEST(ExprCompile, AmbientsAndSlotFallback) {
  expr::SymbolTable table;
  table.bind_ambient("pid", expr::Ambient::Pid);
  table.bind_ambient("tid", expr::Ambient::Tid);
  table.bind_ambient("uid", expr::Ambient::Uid);
  // `i` is a loop variable named like nothing else; `pid` is also a
  // slot (e.g. a loop variable shadowing the system parameter).
  const expr::Slot pid_slot = table.add_variable("pid");
  const expr::Compiled program =
      expr::compile(*expr::parse("pid * 100 + tid * 10 + uid"), table);
  EXPECT_TRUE(program.may_read_pid_tid());

  expr::SlotFrame frame(table);
  expr::EvalContext ctx;
  ctx.frame = frame.frame();
  ctx.pid = 3;
  ctx.tid = 2;
  ctx.uid = 7;
  frame.unbind(pid_slot);  // not shadowed: ambient pid
  EXPECT_EQ(program.eval(ctx), 327.0);
  frame.bind(pid_slot, nullptr);
  frame.set(pid_slot, 0);  // still unbound
  double shadowed = 9;
  frame.bind(pid_slot, &shadowed);  // loop binding active
  EXPECT_EQ(program.eval(ctx), 927.0);
}

TEST(ExprCompile, ConstantBindingFoldsThrough) {
  expr::SymbolTable table;
  table.bind_constant("uid", 42.0);
  const expr::Compiled program =
      expr::compile(*expr::parse("uid * 2 + 1"), table);
  EXPECT_EQ(program.size(), 1u);
  EXPECT_EQ(program.constant(), 85.0);
}

TEST(ExprCompile, ParametersResolveFirstAndPadWithZero) {
  expr::SymbolTable table;
  table.add_variable("a");  // would be a slot, but the parameter wins
  table.add_parameter("a");
  table.add_parameter("b");
  const expr::Compiled program =
      expr::compile(*expr::parse("a * 10 + b"), table);
  expr::EvalContext ctx;
  const std::vector<double> args{3.0};
  ctx.args = args;  // b missing: pads with 0.0, like FunctionEnv
  EXPECT_EQ(program.eval(ctx), 30.0);
}

TEST(ExprCompile, UserFunctionsShadowBuiltins) {
  struct Table final : expr::UserFunctions {
    double call(int id, std::span<const double> args) const override {
      EXPECT_EQ(id, 0);
      return args.empty() ? 0.0 : args[0] * 100.0;
    }
  };
  expr::SymbolTable table;
  table.add_function("log");
  const expr::Compiled program = expr::compile(*expr::parse("log(2)"), table);
  const Table functions;
  expr::EvalContext ctx;
  ctx.functions = &functions;
  EXPECT_EQ(program.eval(ctx), 200.0);
}

TEST(ExprCompile, LazyErrorsMatchTreeWalkMessages) {
  const auto expect_message = [](const std::string& text,
                                 const std::string& message) {
    try {
      (void)run(text);
      FAIL() << text;
    } catch (const expr::EvalError& error) {
      EXPECT_EQ(std::string(error.what()), message) << text;
    }
  };
  expect_message("nope(1)", "unknown function 'nope'");
  expect_message("sqrt(1, 2)", "function 'sqrt' expects 1 argument(s), got 2");
  expect_message("pow(1)", "function 'pow' expects 2 argument(s), got 1");
  expect_message("ghost + 1", "unknown variable 'ghost'");
}

// ---------------------------------------------------------------------------
// Randomized differential test
// ---------------------------------------------------------------------------

/// Either a value (compared bit-for-bit) or an EvalError message.
using Outcome = std::variant<std::uint64_t, std::string>;

Outcome tree_outcome(const expr::Expr& e, const expr::Environment& env) {
  try {
    return std::bit_cast<std::uint64_t>(expr::evaluate(e, env));
  } catch (const expr::EvalError& error) {
    return std::string(error.what());
  }
}

Outcome vm_outcome(const expr::Compiled& program,
                   const expr::EvalContext& ctx) {
  try {
    return std::bit_cast<std::uint64_t>(program.eval(ctx));
  } catch (const expr::EvalError& error) {
    return std::string(error.what());
  }
}

/// Structured random expression source: every node kind, the full
/// operator set, bound/unbound variables, user functions and built-ins
/// called with right and wrong arity.
class RandomExpr {
 public:
  explicit RandomExpr(std::mt19937& rng) : rng_(&rng) {}

  [[nodiscard]] expr::ExprPtr gen(int depth) {
    const int pick = depth <= 0 ? next(2) : next(10);
    switch (pick) {
      case 0:
        return std::make_unique<expr::NumberExpr>(number());
      case 1: {
        const char* names[] = {"a", "b", "c", "ghost"};
        return std::make_unique<expr::VariableExpr>(names[next(4)]);
      }
      case 2:
        return std::make_unique<expr::UnaryExpr>(
            next(2) == 0 ? expr::UnaryOp::Negate : expr::UnaryOp::Not,
            gen(depth - 1));
      case 3:
      case 4:
      case 5:
      case 6: {
        const expr::BinaryOp ops[] = {
            expr::BinaryOp::Add, expr::BinaryOp::Sub, expr::BinaryOp::Mul,
            expr::BinaryOp::Div, expr::BinaryOp::Mod, expr::BinaryOp::Lt,
            expr::BinaryOp::Le,  expr::BinaryOp::Gt,  expr::BinaryOp::Ge,
            expr::BinaryOp::Eq,  expr::BinaryOp::Ne,  expr::BinaryOp::And,
            expr::BinaryOp::Or};
        return std::make_unique<expr::BinaryExpr>(
            ops[next(13)], gen(depth - 1), gen(depth - 1));
      }
      case 7:
      case 8:
        return call(depth);
      default:
        return std::make_unique<expr::ConditionalExpr>(
            gen(depth - 1), gen(depth - 1), gen(depth - 1));
    }
  }

 private:
  [[nodiscard]] int next(int bound) {
    return static_cast<int>((*rng_)() % static_cast<unsigned>(bound));
  }

  [[nodiscard]] double number() {
    const double interesting[] = {0.0,   -0.0, 1.0,    -1.0,  2.0,
                                  0.5,   -3.5, 1e300,  -1e-3, 1e-300,
                                  kNan,  kInf, -kInf,  7.25,  42.0};
    return interesting[next(15)];
  }

  [[nodiscard]] expr::ExprPtr call(int depth) {
    std::vector<expr::ExprPtr> args;
    switch (next(6)) {
      case 0: {  // unary built-in, correct arity
        const char* names[] = {"sqrt", "abs", "floor", "ceil", "log2",
                               "exp"};
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>(names[next(6)],
                                                std::move(args));
      }
      case 1: {  // binary built-in, correct arity
        const char* names[] = {"pow", "min", "max"};
        args.push_back(gen(depth - 1));
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>(names[next(3)],
                                                std::move(args));
      }
      case 2: {  // built-in, wrong arity (lazy error path)
        args.push_back(gen(depth - 1));
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("sqrt", std::move(args));
      }
      case 3: {  // unknown function (lazy error path)
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("mystery", std::move(args));
      }
      case 4: {  // user function shadowing a built-in
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("log", std::move(args));
      }
      default: {  // user function, variable arity (pads with zero)
        const int argc = next(3);
        for (int i = 0; i < argc; ++i) {
          args.push_back(gen(depth - 1));
        }
        return std::make_unique<expr::CallExpr>("blend", std::move(args));
      }
    }
  }

  std::mt19937* rng_;
};

TEST(ExprCompileDifferential, BitIdenticalToTreeWalkOnRandomExpressions) {
  std::mt19937 rng(20260730);
  RandomExpr source(rng);

  // Shared user functions: "log" shadows the built-in, "blend" exercises
  // argument padding.  Identical callables feed both evaluation paths.
  const auto shadow_log = [](std::span<const double> args) {
    return args.empty() ? -1.0 : args[0] * 3.0 + 1.0;
  };
  const auto blend = [](std::span<const double> args) {
    double total = 0.5;
    for (const double arg : args) {
      total = total * 0.5 + arg;
    }
    return total;
  };
  struct Functions final : expr::UserFunctions {
    double (*log_fn)(std::span<const double>) = nullptr;
    double (*blend_fn)(std::span<const double>) = nullptr;
    double call(int id, std::span<const double> args) const override {
      return id == 0 ? log_fn(args) : blend_fn(args);
    }
  };

  expr::SymbolTable table;
  const expr::Slot slot_a = table.add_variable("a");
  const expr::Slot slot_b = table.add_variable("b");
  const expr::Slot slot_c = table.add_variable("c");
  ASSERT_EQ(table.add_function("log"), 0);
  ASSERT_EQ(table.add_function("blend"), 1);
  Functions functions;
  functions.log_fn = +shadow_log;
  functions.blend_fn = +blend;

  const double values[] = {0.0,  -0.0,  1.0,   -2.5, 1e300, -1e300,
                           kNan, kInf, -kInf, 0.125, 3.0,   -1.0};
  int errors_seen = 0;
  int values_seen = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const expr::ExprPtr e = source.gen(4);
    const expr::Compiled program = expr::compile(*e, table);
    for (int binding = 0; binding < 4; ++binding) {
      const double a = values[rng() % 12];
      const double b = values[rng() % 12];
      const double c = values[rng() % 12];

      expr::MapEnvironment env;  // "ghost" stays unbound
      env.set("a", a);
      env.set("b", b);
      env.set("c", c);
      env.define("log", shadow_log);
      env.define("blend", blend);

      expr::SlotFrame frame(table);
      frame.set(slot_a, a);
      frame.set(slot_b, b);
      frame.set(slot_c, c);
      expr::EvalContext ctx;
      ctx.frame = frame.frame();
      ctx.functions = &functions;

      const Outcome expected = tree_outcome(*e, env);
      const Outcome actual = vm_outcome(program, ctx);
      ASSERT_EQ(expected, actual)
          << "trial " << trial << " binding " << binding << "\n"
          << program.disassemble();
      if (std::holds_alternative<std::string>(expected)) {
        ++errors_seen;
      } else {
        ++values_seen;
      }
    }
  }
  // The generator must exercise both the value and the error paths.
  EXPECT_GT(errors_seen, 50);
  EXPECT_GT(values_seen, 200);
}

}  // namespace
