// Expression parser: precedence, associativity, literals, calls, errors,
// and the parse/print round-trip property.
#include <gtest/gtest.h>

#include "prophet/expr/parser.hpp"

namespace expr = prophet::expr;

namespace {

std::string reparse(const std::string& text) {
  return expr::to_source(*expr::parse(text));
}

TEST(ExprParser, NumberLiterals) {
  EXPECT_EQ(static_cast<const expr::NumberExpr&>(*expr::parse("42")).value(),
            42.0);
  EXPECT_EQ(
      static_cast<const expr::NumberExpr&>(*expr::parse("2.5")).value(), 2.5);
  EXPECT_EQ(
      static_cast<const expr::NumberExpr&>(*expr::parse("1e-6")).value(),
      1e-6);
  EXPECT_EQ(
      static_cast<const expr::NumberExpr&>(*expr::parse("0.25E+2")).value(),
      25.0);
}

TEST(ExprParser, VariablesAndCalls) {
  EXPECT_EQ(expr::parse("P")->kind(), expr::ExprKind::Variable);
  const auto call = expr::parse("FA1()");
  ASSERT_EQ(call->kind(), expr::ExprKind::Call);
  EXPECT_EQ(static_cast<const expr::CallExpr&>(*call).callee(), "FA1");
  EXPECT_TRUE(static_cast<const expr::CallExpr&>(*call).args().empty());
  const auto two = expr::parse("pow(P, 2)");
  EXPECT_EQ(static_cast<const expr::CallExpr&>(*two).args().size(), 2u);
}

TEST(ExprParser, MultiplicationBindsTighterThanAddition) {
  EXPECT_EQ(reparse("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(reparse("(1 + 2) * 3"), "(1 + 2) * 3");
}

TEST(ExprParser, LeftAssociativity) {
  // (8 - 4) - 2, not 8 - (4 - 2).
  EXPECT_EQ(reparse("8 - 4 - 2"), "8 - 4 - 2");
  EXPECT_EQ(reparse("8 - (4 - 2)"), "8 - (4 - 2)");
}

TEST(ExprParser, ComparisonAndLogicalPrecedence) {
  // a < b && c > d  parses as  (a < b) && (c > d).
  const auto parsed = expr::parse("a < b && c > d");
  ASSERT_EQ(parsed->kind(), expr::ExprKind::Binary);
  EXPECT_EQ(static_cast<const expr::BinaryExpr&>(*parsed).op(),
            expr::BinaryOp::And);
}

TEST(ExprParser, OrLowerThanAnd) {
  const auto parsed = expr::parse("a && b || c");
  EXPECT_EQ(static_cast<const expr::BinaryExpr&>(*parsed).op(),
            expr::BinaryOp::Or);
}

TEST(ExprParser, UnaryOperators) {
  EXPECT_EQ(reparse("-P"), "-P");
  EXPECT_EQ(reparse("!x"), "!x");
  EXPECT_EQ(reparse("--P"), "--P");  // nested negation
  EXPECT_EQ(reparse("+P"), "P");     // unary plus is a no-op
}

TEST(ExprParser, Ternary) {
  const auto parsed = expr::parse("a > 0 ? b : c");
  EXPECT_EQ(parsed->kind(), expr::ExprKind::Conditional);
  // Right associative: a ? b : c ? d : e == a ? b : (c ? d : e).
  EXPECT_EQ(reparse("a ? b : c ? d : e"), "a ? b : c ? d : e");
}

TEST(ExprParser, PaperCostFunctions) {
  // Expressions from the reproduction of Fig. 8a.
  EXPECT_TRUE(expr::parses("0.000001 * P * P + 0.001"));
  EXPECT_TRUE(expr::parses("0.5 * FA1()"));
  EXPECT_TRUE(expr::parses("0.0005 * pid + 0.001"));
  EXPECT_TRUE(expr::parses("M * (N * (N - 1) / 2) * c"));
  EXPECT_TRUE(expr::parses("GV > 0"));
}

TEST(ExprParser, Whitespace) {
  EXPECT_TRUE(expr::parses("  1\t+\n2  "));
}

class ExprErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprErrors, Rejected) {
  EXPECT_THROW((void)expr::parse(GetParam()), expr::SyntaxError);
  EXPECT_FALSE(expr::parses(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Cases, ExprErrors,
                         ::testing::Values("", "1 +", "* 2", "(1 + 2",
                                           "1 + 2)", "f(1,", "a ? b", "1 2",
                                           "@", "a &| b", "a = b",
                                           "f(,)", "..5"));

TEST(ExprParser, ErrorCarriesOffset) {
  try {
    (void)expr::parse("1 + @");
    FAIL();
  } catch (const expr::SyntaxError& error) {
    EXPECT_EQ(error.offset(), 4u);
  }
}

// Round-trip property: to_source output reparses to an equal tree.
class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, SourceRoundTrips) {
  const auto first = expr::parse(GetParam());
  const auto second = expr::parse(expr::to_source(*first));
  EXPECT_TRUE(expr::equal(*first, *second))
      << GetParam() << " -> " << expr::to_source(*first);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExprRoundTrip,
    ::testing::Values("1 + 2 * 3", "(1 + 2) * 3", "a / b / c", "a % b % c",
                      "-a * -b", "f(g(x), h(y, 2))",
                      "a < b == c > d", "!(a && b) || c",
                      "x ? y + 1 : z * 2", "0.000001 * P * P + 0.001",
                      "sqrt(pow(x, 2) + pow(y, 2))",
                      "a - (b - c) - d"));

TEST(ExprClone, CloneIsEqual) {
  const auto original = expr::parse("a ? f(x) + 1 : -b % 3");
  const auto copy = original->clone();
  EXPECT_TRUE(expr::equal(*original, *copy));
}

}  // namespace
