// Batched expression VM: SlotBlock layout, the eval_batch fast path and
// its lane-by-lane fallback, and the randomized differential suite
// pinning bit-identity against per-lane Compiled::eval at several lane
// widths — including NaN/inf/signed-zero lanes and lazy-error lanes
// (the error must fire for the lowest erroring lane, with the scalar
// loop's exact message).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "prophet/expr/compile.hpp"
#include "prophet/expr/parser.hpp"
#include "prophet/obs/obs.hpp"

namespace expr = prophet::expr;
namespace obs = prophet::obs;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// A scalar evaluation outcome: the result's bit pattern, or the error
/// message.  Comparing bit patterns (not values) pins NaN payloads and
/// signed zeros.
using Outcome = std::variant<std::uint64_t, std::string>;

Outcome scalar_outcome(const expr::Compiled& program,
                       const expr::EvalContext& ctx) {
  try {
    return std::bit_cast<std::uint64_t>(program.eval(ctx));
  } catch (const expr::EvalError& error) {
    return std::string(error.what());
  }
}

// --- SlotBlock --------------------------------------------------------------

TEST(SlotBlock, LaysLanesOutSlotMajor) {
  expr::SymbolTable table;
  const expr::Slot a = table.add_variable("a");
  const expr::Slot b = table.add_variable("b");
  expr::SlotBlock block(table, 4);
  ASSERT_EQ(block.width(), 4u);
  ASSERT_EQ(block.slot_count(), 2u);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    block.set(a, lane, 10.0 + static_cast<double>(lane));
    block.set(b, lane, 20.0 + static_cast<double>(lane));
  }
  // Each slot's lanes are one contiguous array...
  EXPECT_EQ(block.lanes(a)[0], 10.0);
  EXPECT_EQ(block.lanes(a)[3], 13.0);
  EXPECT_EQ(block.lanes(b)[2], 22.0);
  // ...and lane arrays of consecutive slots are adjacent (slot-major).
  EXPECT_EQ(block.lanes(b), block.lanes(a) + 4);
  EXPECT_EQ(block.get(b, 1), 21.0);
}

TEST(SlotBlock, BindAndUnbindMirrorSlotFrame) {
  expr::SymbolTable table;
  const expr::Slot a = table.add_variable("a");
  expr::SlotBlock block(table, 2);
  double external[2] = {7.0, 8.0};
  block.bind(a, external);
  EXPECT_EQ(block.get(a, 1), 8.0);
  EXPECT_EQ(block.frame()[a], external);
  block.unbind(a);
  EXPECT_EQ(block.frame()[a], nullptr);
  // Owned storage survives rebinding.
  block.bind(a, block.lanes(a));
  block.set(a, 0, 1.5);
  EXPECT_EQ(block.get(a, 0), 1.5);
}

// --- Directed eval_batch cases ----------------------------------------------

/// Compiles `text` against a table with variables a, b, c.
struct Abc {
  expr::SymbolTable table;
  expr::Slot a, b, c;
  expr::Compiled program;

  explicit Abc(const std::string& text)
      : a(table.add_variable("a")),
        b(table.add_variable("b")),
        c(table.add_variable("c")),
        program(expr::compile(*expr::parse(text), table)) {}
};

TEST(ExprBatch, EvaluatesAllLanesOfABranchlessProgram) {
  Abc m("a + b * c");
  ASSERT_TRUE(m.program.branchless());
  expr::SlotBlock block(m.table, 8);
  for (std::size_t lane = 0; lane < 8; ++lane) {
    const double x = static_cast<double>(lane);
    block.set(m.a, lane, x);
    block.set(m.b, lane, x + 1);
    block.set(m.c, lane, 2.0);
  }
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = 8;
  double out[8];
  m.program.eval_batch(ctx, out);
  for (std::size_t lane = 0; lane < 8; ++lane) {
    const double x = static_cast<double>(lane);
    EXPECT_EQ(out[lane], x + (x + 1) * 2.0) << lane;
  }
}

TEST(ExprBatch, SpecialValuesArePropagatedBitExactly) {
  Abc m("a / b - c");
  expr::SlotBlock block(m.table, 4);
  const double as[] = {0.0, 1.0, kNan, kInf};
  const double bs[] = {-0.0, 0.0, 2.0, -kInf};
  const double cs[] = {-0.0, -kInf, 0.5, kNan};
  for (std::size_t lane = 0; lane < 4; ++lane) {
    block.set(m.a, lane, as[lane]);
    block.set(m.b, lane, bs[lane]);
    block.set(m.c, lane, cs[lane]);
  }
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = 4;
  double out[4];
  m.program.eval_batch(ctx, out);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    const double expected = as[lane] / bs[lane] - cs[lane];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[lane]),
              std::bit_cast<std::uint64_t>(expected))
        << lane;
  }
}

TEST(ExprBatch, WidthOneMatchesScalarEval) {
  Abc m("max(a, b) + min(b, c) % a");
  expr::SlotBlock block(m.table, 1);
  block.set(m.a, 0, 3.5);
  block.set(m.b, 0, -2.0);
  block.set(m.c, 0, 7.0);
  expr::BatchEvalContext batch;
  batch.frame = block.frame();
  batch.width = 1;
  double out = 0;
  m.program.eval_batch(batch, &out);

  expr::SlotFrame frame(m.table);
  frame.set(m.a, 3.5);
  frame.set(m.b, -2.0);
  frame.set(m.c, 7.0);
  expr::EvalContext scalar;
  scalar.frame = frame.frame();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out),
            std::bit_cast<std::uint64_t>(m.program.eval(scalar)));
}

TEST(ExprBatch, LazyErrorFiresOnTheLowestErroringLane) {
  // "ghost" is never bound: the load errors only in lanes where the
  // conditional takes the error branch.
  expr::SymbolTable table;
  const expr::Slot a = table.add_variable("a");
  table.add_variable("ghost");
  const expr::Compiled program =
      expr::compile(*expr::parse("a > 0 ? a : ghost"), table);

  expr::SlotBlock block(table, 4);
  const double as[] = {1.0, -1.0, -2.0, 3.0};  // lanes 1 and 2 error
  for (std::size_t lane = 0; lane < 4; ++lane) {
    block.set(a, lane, as[lane]);
  }
  block.unbind(table.slot_of("ghost").value());
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = 4;
  double out[4] = {};

  // The scalar loop evaluates lane 0 fine and throws on lane 1; the
  // batch entry must surface that lane's exact message.
  std::string scalar_message;
  {
    expr::SlotFrame frame(table);
    frame.set(a, -1.0);
    frame.unbind(table.slot_of("ghost").value());
    expr::EvalContext scalar;
    scalar.frame = frame.frame();
    try {
      (void)program.eval(scalar);
      FAIL() << "scalar eval should have thrown";
    } catch (const expr::EvalError& error) {
      scalar_message = error.what();
    }
  }
  try {
    program.eval_batch(ctx, out);
    FAIL() << "eval_batch should have thrown";
  } catch (const expr::EvalError& error) {
    EXPECT_EQ(std::string(error.what()), scalar_message);
  }
  // Lanes before the erroring one were evaluated with scalar semantics.
  EXPECT_EQ(out[0], 1.0);
}

TEST(ExprBatch, FastPathCountsOneBatchEval) {
  Abc m("a * b + c");
  ASSERT_TRUE(m.program.branchless());
  expr::SlotBlock block(m.table, 8);
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = 8;
  obs::ExprCounters counters;
  ctx.counters = &counters;
  double out[8];
  m.program.eval_batch(ctx, out);
  EXPECT_EQ(counters.batch_evals, 1u);
  EXPECT_EQ(counters.evals, 8u);  // one per lane, like the scalar loop
}

// --- Batched user functions -------------------------------------------------

/// One set of callables behind both the scalar and the batched function
/// interfaces, so differential runs feed identical semantics.
double shadow_log(std::span<const double> args) {
  return args.empty() ? -1.0 : args[0] * 3.0 + 1.0;
}
double blend(std::span<const double> args) {
  double total = 0.5;
  for (const double arg : args) {
    total = total * 0.5 + arg;
  }
  return total;
}
double dispatch(int id, std::span<const double> args) {
  return id == 0 ? shadow_log(args) : blend(args);
}

struct ScalarFunctions final : expr::UserFunctions {
  double call(int id, std::span<const double> args) const override {
    return dispatch(id, args);
  }
};

struct BatchFunctions final : expr::BatchUserFunctions {
  void call_batch(int id, std::span<const double* const> args, double* out,
                  std::size_t width) const override {
    std::vector<double> lane_args(args.size());
    for (std::size_t lane = 0; lane < width; ++lane) {
      for (std::size_t i = 0; i < args.size(); ++i) {
        lane_args[i] = args[i][lane];
      }
      out[lane] = dispatch(id, lane_args);
    }
  }
  double call_lane(int id, std::span<const double> args,
                   std::size_t /*lane*/) const override {
    return dispatch(id, args);
  }
};

TEST(ExprBatch, UserFunctionCallsGoThroughTheBatchInterface) {
  expr::SymbolTable table;
  const expr::Slot a = table.add_variable("a");
  ASSERT_EQ(table.add_function("log"), 0);
  ASSERT_EQ(table.add_function("blend"), 1);
  const expr::Compiled program =
      expr::compile(*expr::parse("log(a) + blend(a, 2)"), table);
  ASSERT_TRUE(program.calls_user_functions());

  expr::SlotBlock block(table, 3);
  for (std::size_t lane = 0; lane < 3; ++lane) {
    block.set(a, lane, static_cast<double>(lane) + 0.5);
  }
  const BatchFunctions functions;
  expr::BatchEvalContext ctx;
  ctx.frame = block.frame();
  ctx.width = 3;
  ctx.functions = &functions;
  double out[3];
  program.eval_batch(ctx, out);

  const ScalarFunctions scalar_functions;
  expr::SlotFrame frame(table);
  for (std::size_t lane = 0; lane < 3; ++lane) {
    frame.set(a, static_cast<double>(lane) + 0.5);
    expr::EvalContext scalar;
    scalar.frame = frame.frame();
    scalar.functions = &scalar_functions;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[lane]),
              std::bit_cast<std::uint64_t>(program.eval(scalar)))
        << lane;
  }
}

// --- Randomized differential suite ------------------------------------------

/// Structured random expression source (the batched sibling of the one
/// in compile_test.cpp): every operator, bound/unbound variables,
/// built-ins with right and wrong arity, user functions.
class RandomExpr {
 public:
  explicit RandomExpr(std::mt19937& rng) : rng_(&rng) {}

  [[nodiscard]] expr::ExprPtr gen(int depth) {
    const int pick = depth <= 0 ? next(2) : next(10);
    switch (pick) {
      case 0:
        return std::make_unique<expr::NumberExpr>(number());
      case 1: {
        const char* names[] = {"a", "b", "c", "ghost"};
        return std::make_unique<expr::VariableExpr>(names[next(4)]);
      }
      case 2:
        return std::make_unique<expr::UnaryExpr>(
            next(2) == 0 ? expr::UnaryOp::Negate : expr::UnaryOp::Not,
            gen(depth - 1));
      case 3:
      case 4:
      case 5:
      case 6: {
        const expr::BinaryOp ops[] = {
            expr::BinaryOp::Add, expr::BinaryOp::Sub, expr::BinaryOp::Mul,
            expr::BinaryOp::Div, expr::BinaryOp::Mod, expr::BinaryOp::Lt,
            expr::BinaryOp::Le,  expr::BinaryOp::Gt,  expr::BinaryOp::Ge,
            expr::BinaryOp::Eq,  expr::BinaryOp::Ne,  expr::BinaryOp::And,
            expr::BinaryOp::Or};
        return std::make_unique<expr::BinaryExpr>(
            ops[next(13)], gen(depth - 1), gen(depth - 1));
      }
      case 7:
      case 8:
        return call(depth);
      default:
        return std::make_unique<expr::ConditionalExpr>(
            gen(depth - 1), gen(depth - 1), gen(depth - 1));
    }
  }

 private:
  [[nodiscard]] int next(int bound) {
    return static_cast<int>((*rng_)() % static_cast<unsigned>(bound));
  }

  [[nodiscard]] double number() {
    const double interesting[] = {0.0,   -0.0, 1.0,    -1.0,  2.0,
                                  0.5,   -3.5, 1e300,  -1e-3, 1e-300,
                                  kNan,  kInf, -kInf,  7.25,  42.0};
    return interesting[next(15)];
  }

  [[nodiscard]] expr::ExprPtr call(int depth) {
    std::vector<expr::ExprPtr> args;
    switch (next(6)) {
      case 0: {  // unary built-in, correct arity
        const char* names[] = {"sqrt", "abs", "floor", "ceil", "log2",
                               "exp"};
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>(names[next(6)],
                                                std::move(args));
      }
      case 1: {  // binary built-in, correct arity
        const char* names[] = {"pow", "min", "max"};
        args.push_back(gen(depth - 1));
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>(names[next(3)],
                                                std::move(args));
      }
      case 2: {  // built-in, wrong arity (lazy error path)
        args.push_back(gen(depth - 1));
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("sqrt", std::move(args));
      }
      case 3: {  // unknown function (lazy error path)
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("mystery", std::move(args));
      }
      case 4: {  // user function shadowing a built-in
        args.push_back(gen(depth - 1));
        return std::make_unique<expr::CallExpr>("log", std::move(args));
      }
      default: {  // user function, variable arity
        const int argc = next(3);
        for (int i = 0; i < argc; ++i) {
          args.push_back(gen(depth - 1));
        }
        return std::make_unique<expr::CallExpr>("blend", std::move(args));
      }
    }
  }

  std::mt19937* rng_;
};

TEST(ExprBatchDifferential, BitIdenticalToPerLaneEvalAtEveryWidth) {
  std::mt19937 rng(20260808);
  RandomExpr source(rng);

  expr::SymbolTable table;
  const expr::Slot slot_a = table.add_variable("a");
  const expr::Slot slot_b = table.add_variable("b");
  const expr::Slot slot_c = table.add_variable("c");
  const expr::Slot slot_ghost = table.add_variable("ghost");
  ASSERT_EQ(table.add_function("log"), 0);
  ASSERT_EQ(table.add_function("blend"), 1);
  const ScalarFunctions scalar_functions;
  const BatchFunctions batch_functions;

  const double values[] = {0.0,  -0.0,  1.0,   -2.5, 1e300, -1e300,
                           kNan, kInf, -kInf, 0.125, 3.0,   -1.0};
  const std::size_t widths[] = {1, 2, 7, 8, 33};
  int errors_seen = 0;
  int values_seen = 0;
  for (int trial = 0; trial < 420; ++trial) {
    const expr::ExprPtr e = source.gen(4);
    const expr::Compiled program = expr::compile(*e, table);
    const std::size_t width = widths[trial % 5];

    expr::SlotBlock block(table, width);
    block.unbind(slot_ghost);  // "ghost" loads raise the lazy error
    for (std::size_t lane = 0; lane < width; ++lane) {
      block.set(slot_a, lane, values[rng() % 12]);
      block.set(slot_b, lane, values[rng() % 12]);
      block.set(slot_c, lane, values[rng() % 12]);
    }

    // Expected: the scalar loop over per-lane frames.  The first
    // erroring lane's message is the loop's outcome.
    std::vector<Outcome> expected;
    Outcome loop_outcome = std::uint64_t{0};
    bool loop_errored = false;
    for (std::size_t lane = 0; lane < width && !loop_errored; ++lane) {
      expr::SlotFrame frame(table);
      frame.set(slot_a, block.get(slot_a, lane));
      frame.set(slot_b, block.get(slot_b, lane));
      frame.set(slot_c, block.get(slot_c, lane));
      frame.unbind(slot_ghost);
      expr::EvalContext scalar;
      scalar.frame = frame.frame();
      scalar.functions = &scalar_functions;
      Outcome outcome = scalar_outcome(program, scalar);
      if (std::holds_alternative<std::string>(outcome)) {
        loop_outcome = outcome;
        loop_errored = true;
      }
      expected.push_back(std::move(outcome));
    }

    expr::BatchEvalContext ctx;
    ctx.frame = block.frame();
    ctx.width = width;
    ctx.functions = &batch_functions;
    std::vector<double> out(width, 0.0);
    Outcome actual = std::uint64_t{0};
    bool batch_errored = false;
    try {
      program.eval_batch(ctx, out.data());
    } catch (const expr::EvalError& error) {
      actual = std::string(error.what());
      batch_errored = true;
    }

    ASSERT_EQ(loop_errored, batch_errored)
        << "trial " << trial << " width " << width << "\n"
        << program.disassemble();
    if (loop_errored) {
      ASSERT_EQ(loop_outcome, actual)
          << "trial " << trial << " width " << width << "\n"
          << program.disassemble();
      ++errors_seen;
    } else {
      for (std::size_t lane = 0; lane < width; ++lane) {
        ASSERT_EQ(std::get<std::uint64_t>(expected[lane]),
                  std::bit_cast<std::uint64_t>(out[lane]))
            << "trial " << trial << " width " << width << " lane " << lane
            << "\n"
            << program.disassemble();
      }
      ++values_seen;
    }
  }
  // The generator must exercise both regimes; fail loudly if a change
  // to it silently drops one.
  EXPECT_GT(errors_seen, 40);
  EXPECT_GT(values_seen, 40);
}

}  // namespace
