// Unit tests for the discrete-event simulation engine: clock, event
// ordering, process spawning/joining, sub-process calls, holds, and error
// propagation.
#include "prophet/sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim = prophet::sim;

namespace {

sim::Process hold_then_mark(sim::Engine& engine, std::vector<double>& marks,
                            double delay) {
  co_await engine.hold(delay);
  marks.push_back(engine.now());
}

TEST(Engine, StartsAtTimeZero) {
  sim::Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.events_processed(), 0u);
}

TEST(Engine, HoldAdvancesClock) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 2.5));
  engine.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_DOUBLE_EQ(marks[0], 2.5);
  EXPECT_DOUBLE_EQ(engine.now(), 2.5);
}

TEST(Engine, ProcessesFireInTimeOrder) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 3.0));
  engine.spawn(hold_then_mark(engine, marks, 1.0));
  engine.spawn(hold_then_mark(engine, marks, 2.0));
  engine.run();
  ASSERT_EQ(marks.size(), 3u);
  EXPECT_DOUBLE_EQ(marks[0], 1.0);
  EXPECT_DOUBLE_EQ(marks[1], 2.0);
  EXPECT_DOUBLE_EQ(marks[2], 3.0);
}

TEST(Engine, EqualTimesFireInSpawnOrder) {
  sim::Engine engine;
  std::vector<int> order;
  auto proc = [](sim::Engine& eng, std::vector<int>& log,
                 int id) -> sim::Process {
    co_await eng.hold(1.0);
    log.push_back(id);
  };
  for (int i = 0; i < 10; ++i) {
    engine.spawn(proc(engine, order, i));
  }
  engine.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Engine, ZeroHoldDoesNotAdvanceClock) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 0.0));
  engine.run();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_DOUBLE_EQ(marks[0], 0.0);
}

TEST(Engine, NegativeHoldThrows) {
  sim::Engine engine;
  auto proc = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(-1.0);
  };
  engine.spawn(proc(engine));
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(Engine, SequentialHoldsAccumulate) {
  sim::Engine engine;
  double finished = -1;
  auto proc = [](sim::Engine& eng, double& out) -> sim::Process {
    co_await eng.hold(1.0);
    co_await eng.hold(2.0);
    co_await eng.hold(3.0);
    out = eng.now();
  };
  engine.spawn(proc(engine, finished));
  engine.run();
  EXPECT_DOUBLE_EQ(finished, 6.0);
}

TEST(Engine, SubProcessRunsInline) {
  sim::Engine engine;
  std::vector<std::string> log;
  auto child = [](sim::Engine& eng, std::vector<std::string>& out,
                  double d) -> sim::Process {
    out.push_back("child-start");
    co_await eng.hold(d);
    out.push_back("child-end");
  };
  auto parent = [&child](sim::Engine& eng,
                         std::vector<std::string>& out) -> sim::Process {
    out.push_back("parent-start");
    co_await child(eng, out, 4.0);
    out.push_back("parent-end");
  };
  engine.spawn(parent(engine, log));
  engine.run();
  const std::vector<std::string> expected{"parent-start", "child-start",
                                          "child-end", "parent-end"};
  EXPECT_EQ(log, expected);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(Engine, DeeplyNestedSubProcesses) {
  sim::Engine engine;
  struct Helper {
    static sim::Process nest(sim::Engine& eng, int depth, int& leaves) {
      if (depth == 0) {
        co_await eng.hold(0.001);
        ++leaves;
        co_return;
      }
      co_await nest(eng, depth - 1, leaves);
      co_await nest(eng, depth - 1, leaves);
    }
  };
  int leaves = 0;
  engine.spawn(Helper::nest(engine, 10, leaves));
  engine.run();
  EXPECT_EQ(leaves, 1024);
  EXPECT_NEAR(engine.now(), 1.024, 1e-9);
}

TEST(Engine, SpawnAndJoin) {
  sim::Engine engine;
  std::vector<std::string> log;
  auto worker = [](sim::Engine& eng, std::vector<std::string>& out,
                   double d) -> sim::Process {
    co_await eng.hold(d);
    out.push_back("worker@" + std::to_string(eng.now()));
  };
  auto parent = [&worker](sim::Engine& eng,
                          std::vector<std::string>& out) -> sim::Process {
    sim::ProcessRef a = eng.spawn(worker(eng, out, 2.0));
    sim::ProcessRef b = eng.spawn(worker(eng, out, 5.0));
    co_await a;
    out.push_back("joined-a@" + std::to_string(eng.now()));
    co_await b;
    out.push_back("joined-b@" + std::to_string(eng.now()));
  };
  engine.spawn(parent(engine, log));
  engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[1], "joined-a@" + std::to_string(2.0));
  EXPECT_EQ(log[3], "joined-b@" + std::to_string(5.0));
}

TEST(Engine, JoinAlreadyFinishedProcessIsImmediate) {
  sim::Engine engine;
  auto quick = [](sim::Engine& eng) -> sim::Process { co_await eng.hold(1); };
  auto parent = [&quick](sim::Engine& eng, double& joined) -> sim::Process {
    sim::ProcessRef ref = eng.spawn(quick(eng));
    co_await eng.hold(10.0);
    EXPECT_TRUE(ref.done());
    co_await ref;  // must not deadlock
    joined = eng.now();
  };
  double joined = -1;
  engine.spawn(parent(engine, joined));
  engine.run();
  EXPECT_DOUBLE_EQ(joined, 10.0);
}

TEST(Engine, ConcurrentProcessesOverlapInSimTime) {
  sim::Engine engine;
  // Two spawned processes each hold 5s; total simulated time is 5, not 10.
  auto worker = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(5.0);
  };
  engine.spawn(worker(engine));
  engine.spawn(worker(engine));
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, RunUntilStopsEarly) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 1.0));
  engine.spawn(hold_then_mark(engine, marks, 100.0));
  engine.run(/*until=*/10.0);
  EXPECT_EQ(marks.size(), 1u);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(marks.size(), 2u);
}

TEST(Engine, StepProcessesOneEvent) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 1.0));
  engine.spawn(hold_then_mark(engine, marks, 2.0));
  // Each process needs two events: initial resume + post-hold resume.
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(marks.size(), 1u);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(marks.size(), 2u);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, ErrorInSpawnedProcessPropagatesToRun) {
  sim::Engine engine;
  auto bad = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(1.0);
    throw std::runtime_error("model failure");
  };
  engine.spawn(bad(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, ErrorInJoinedProcessPropagatesToJoiner) {
  sim::Engine engine;
  auto bad = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(1.0);
    throw std::runtime_error("child failure");
  };
  bool caught = false;
  auto parent = [&bad](sim::Engine& eng, bool& flag) -> sim::Process {
    sim::ProcessRef ref = eng.spawn(bad(eng));
    try {
      co_await ref;
    } catch (const std::runtime_error&) {
      flag = true;
    }
  };
  engine.spawn(parent(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, ErrorInSubProcessPropagatesToCaller) {
  sim::Engine engine;
  auto bad = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(1.0);
    throw std::runtime_error("sub failure");
  };
  bool caught = false;
  auto parent = [&bad](sim::Engine& eng, bool& flag) -> sim::Process {
    try {
      co_await bad(eng);
    } catch (const std::runtime_error&) {
      flag = true;
    }
    co_await eng.hold(1.0);
  };
  engine.spawn(parent(engine, caught));
  engine.run();
  EXPECT_TRUE(caught);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, LiveProcessCountTracksCompletion) {
  sim::Engine engine;
  auto worker = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(1.0);
  };
  engine.spawn(worker(engine));
  engine.spawn(worker(engine));
  EXPECT_EQ(engine.live_processes(), 2u);
  engine.run();
  EXPECT_EQ(engine.live_processes(), 0u);
}

TEST(Engine, BlockedProcessesAreReclaimedAtEngineDestruction) {
  // A process that waits forever on a join must not leak; the engine
  // destroys suspended frames in its destructor (ASAN would flag a leak).
  auto never = [](sim::Engine& eng, sim::ProcessRef ref) -> sim::Process {
    co_await ref;
    co_await eng.hold(1.0);
  };
  auto forever = [](sim::Engine& eng) -> sim::Process {
    co_await eng.hold(sim::kTimeInfinity);
  };
  sim::Engine engine;
  sim::ProcessRef ref = engine.spawn(forever(engine));
  engine.spawn(never(engine, ref));
  engine.run(/*until=*/100.0);
  EXPECT_GT(engine.live_processes(), 0u);
  // Destructor runs at scope exit; the test passes if nothing crashes/leaks.
}

TEST(Engine, ManyProcessesThroughput) {
  sim::Engine engine;
  auto worker = [](sim::Engine& eng, int hops) -> sim::Process {
    for (int i = 0; i < hops; ++i) {
      co_await eng.hold(0.5);
    }
  };
  for (int i = 0; i < 1000; ++i) {
    engine.spawn(worker(engine, 10));
  }
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
  // 1000 initial resumes + 1000*10 hold resumes.
  EXPECT_EQ(engine.events_processed(), 11000u);
}

TEST(Engine, ScheduleIntoPastThrows) {
  sim::Engine engine;
  std::vector<double> marks;
  engine.spawn(hold_then_mark(engine, marks, 5.0));
  engine.run();
  auto late = [](sim::Engine& eng) -> sim::Process { co_await eng.hold(0); };
  EXPECT_THROW(engine.spawn_at(1.0, late(engine)), std::logic_error);
}

}  // namespace
