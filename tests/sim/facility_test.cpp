// Facilities: queueing semantics, priorities, statistics identities.
#include <gtest/gtest.h>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/facility.hpp"

namespace sim = prophet::sim;

namespace {

sim::Process use(sim::Engine& engine, sim::Facility& facility, double service,
                 std::vector<double>* done = nullptr, int priority = 0) {
  co_await facility.acquire(priority);
  co_await engine.hold(service);
  facility.release();
  if (done != nullptr) {
    done->push_back(engine.now());
  }
}

TEST(Facility, SingleServerSerializes) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  std::vector<double> done;
  engine.spawn(use(engine, cpu, 2.0, &done));
  engine.spawn(use(engine, cpu, 2.0, &done));
  engine.spawn(use(engine, cpu, 2.0, &done));
  engine.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 4.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
  EXPECT_EQ(cpu.completions(), 3u);
}

TEST(Facility, MultipleServersRunConcurrently) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 3);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    engine.spawn(use(engine, cpu, 2.0, &done));
  }
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);  // all in parallel
}

TEST(Facility, TwoServersThreeJobs) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 2);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    engine.spawn(use(engine, cpu, 2.0, &done));
  }
  engine.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 4.0);
}

TEST(Facility, FcfsOrderWithinEqualPriority) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  std::vector<int> order;
  auto job = [&order](sim::Engine& eng, sim::Facility& f, int id,
                      double arrival) -> sim::Process {
    co_await eng.hold(arrival);
    co_await f.acquire();
    co_await eng.hold(1.0);
    f.release();
    order.push_back(id);
  };
  engine.spawn(job(engine, cpu, 0, 0.0));
  engine.spawn(job(engine, cpu, 1, 0.1));
  engine.spawn(job(engine, cpu, 2, 0.2));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Facility, HigherPriorityJumpsQueue) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  std::vector<int> order;
  auto job = [&order](sim::Engine& eng, sim::Facility& f, int id,
                      double arrival, int priority) -> sim::Process {
    co_await eng.hold(arrival);
    co_await f.acquire(priority);
    co_await eng.hold(1.0);
    f.release();
    order.push_back(id);
  };
  engine.spawn(job(engine, cpu, 0, 0.0, 0));  // occupies server
  engine.spawn(job(engine, cpu, 1, 0.1, 0));  // waits
  engine.spawn(job(engine, cpu, 2, 0.2, 5));  // high priority, overtakes 1
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Facility, UtilizationIdentity) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  engine.spawn(use(engine, cpu, 3.0));
  engine.spawn(use(engine, cpu, 1.0));
  engine.run();
  // Busy 4 time units out of 4 elapsed -> utilization 1.
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-12);
}

TEST(Facility, PartialUtilization) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  auto late = [](sim::Engine& eng, sim::Facility& f) -> sim::Process {
    co_await eng.hold(3.0);
    co_await f.acquire();
    co_await eng.hold(1.0);
    f.release();
  };
  engine.spawn(late(engine, cpu));
  engine.run();
  // Busy 1 of 4 time units.
  EXPECT_NEAR(cpu.utilization(), 0.25, 1e-12);
}

TEST(Facility, WaitingTimesRecorded) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  engine.spawn(use(engine, cpu, 2.0));
  engine.spawn(use(engine, cpu, 2.0));
  engine.run();
  EXPECT_EQ(cpu.waiting_times().count(), 2u);
  EXPECT_DOUBLE_EQ(cpu.waiting_times().min(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.waiting_times().max(), 2.0);
}

TEST(Facility, ReleaseWhenIdleThrows) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  EXPECT_THROW(cpu.release(), std::logic_error);
}

TEST(Facility, NeedsPositiveServers) {
  sim::Engine engine;
  EXPECT_THROW(sim::Facility(engine, "bad", 0), std::invalid_argument);
}

TEST(Facility, QueueLengthStatistics) {
  sim::Engine engine;
  sim::Facility cpu(engine, "cpu", 1);
  for (int i = 0; i < 4; ++i) {
    engine.spawn(use(engine, cpu, 1.0));
  }
  engine.run();
  EXPECT_DOUBLE_EQ(cpu.max_queue_length(), 3.0);
  EXPECT_GT(cpu.mean_queue_length(), 0.0);
  EXPECT_EQ(cpu.queue_length(), 0u);
}

}  // namespace
