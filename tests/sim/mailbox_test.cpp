// Mailboxes, statistics accumulators, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "prophet/sim/engine.hpp"
#include "prophet/sim/mailbox.hpp"
#include "prophet/sim/random.hpp"
#include "prophet/sim/stats.hpp"

namespace sim = prophet::sim;

namespace {

TEST(Mailbox, ReceiveBlocksUntilSend) {
  sim::Engine engine;
  sim::Mailbox box(engine, "box");
  double received_at = -1;
  int source = -1;
  auto receiver = [&](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    const sim::Message message = co_await mb.receive();
    received_at = eng.now();
    source = message.source;
  };
  auto sender = [](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    co_await eng.hold(5.0);
    mb.send({.source = 3, .tag = 0, .size = 64});
  };
  engine.spawn(receiver(engine, box));
  engine.spawn(sender(engine, box));
  engine.run();
  EXPECT_DOUBLE_EQ(received_at, 5.0);
  EXPECT_EQ(source, 3);
}

TEST(Mailbox, EarlySendIsBuffered) {
  sim::Engine engine;
  sim::Mailbox box(engine, "box");
  double received_at = -1;
  auto receiver = [&](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    co_await eng.hold(10.0);
    (void)co_await mb.receive();
    received_at = eng.now();
  };
  auto sender = [](sim::Engine&, sim::Mailbox& mb) -> sim::Process {
    mb.send({});
    co_return;
  };
  engine.spawn(receiver(engine, box));
  engine.spawn(sender(engine, box));
  engine.run();
  EXPECT_DOUBLE_EQ(received_at, 10.0);  // no extra wait
  EXPECT_EQ(box.messages_received(), 1u);
}

TEST(Mailbox, FifoDelivery) {
  sim::Engine engine;
  sim::Mailbox box(engine, "box");
  std::vector<std::uint64_t> payloads;
  auto receiver = [&](sim::Mailbox& mb, int count) -> sim::Process {
    for (int i = 0; i < count; ++i) {
      const sim::Message m = co_await mb.receive();
      payloads.push_back(m.payload);
    }
  };
  auto sender = [](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    for (std::uint64_t i = 0; i < 5; ++i) {
      co_await eng.hold(1.0);
      mb.send({.source = 0, .tag = 0, .size = 0, .sent_at = 0, .payload = i});
    }
  };
  engine.spawn(receiver(box, 5));
  engine.spawn(sender(engine, box));
  engine.run();
  EXPECT_EQ(payloads, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, MultipleWaitersServedInOrder) {
  sim::Engine engine;
  sim::Mailbox box(engine, "box");
  std::vector<int> order;
  auto receiver = [&order](sim::Engine& eng, sim::Mailbox& mb, int id,
                           double start) -> sim::Process {
    co_await eng.hold(start);
    (void)co_await mb.receive();
    order.push_back(id);
  };
  auto sender = [](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    co_await eng.hold(10.0);
    mb.send({});
    mb.send({});
  };
  engine.spawn(receiver(engine, box, 0, 0.0));
  engine.spawn(receiver(engine, box, 1, 1.0));
  engine.spawn(sender(engine, box));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Mailbox, StatsTrackTraffic) {
  sim::Engine engine;
  sim::Mailbox box(engine, "box");
  auto sender = [](sim::Engine& eng, sim::Mailbox& mb) -> sim::Process {
    mb.send({});
    co_await eng.hold(1.0);
    mb.send({});
  };
  engine.spawn(sender(engine, box));
  engine.run();
  EXPECT_EQ(box.messages_sent(), 2u);
  EXPECT_EQ(box.messages_received(), 0u);
  EXPECT_EQ(box.pending(), 2u);
}

// --- Statistics ----------------------------------------------------------------

TEST(Stats, AccumulatorMoments) {
  sim::Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.record(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 1.25);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  const sim::Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
}

TEST(Stats, TimeWeightedMean) {
  sim::TimeWeighted level;
  level.set(2.0, 0.0);   // level 2 from t=0
  level.set(4.0, 10.0);  // level 4 from t=10
  // mean over [0,20] = (2*10 + 4*10)/20 = 3.
  EXPECT_DOUBLE_EQ(level.mean(20.0), 3.0);
  EXPECT_DOUBLE_EQ(level.max(), 4.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  sim::Histogram histogram(0.0, 10.0, 5);
  histogram.record(1.0);
  histogram.record(3.0);
  histogram.record(3.5);
  histogram.record(-5.0);  // clamped to first bin
  histogram.record(99.0);  // clamped to last bin
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.counts()[0], 2u);
  EXPECT_EQ(histogram.counts()[1], 2u);
  EXPECT_EQ(histogram.counts()[4], 1u);
  EXPECT_FALSE(histogram.render().empty());
}

// --- RNG -------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  sim::Rng a(42);
  sim::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(1);
  sim::Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  sim::Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo = saw_lo || v == 1;
    saw_hi = saw_hi || v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  sim::Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  sim::Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  sim::Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

}  // namespace
