// XMI serialization: structure, round-trip property, error handling.
#include <gtest/gtest.h>

#include "prophet/prophet.hpp"
#include "prophet/xmi/xmi.hpp"
#include "prophet/xml/parser.hpp"

namespace uml = prophet::uml;
namespace xmi = prophet::xmi;

namespace {

uml::Model tiny_model() {
  uml::ModelBuilder mb("Tiny");
  mb.global("GV", uml::VariableType::Real, "0");
  mb.local("L", uml::VariableType::Integer);
  mb.function("F", {"x"}, "x + GV");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").cost("F(2)").code("GV = 1;");
  a.tag(uml::tag::kId, uml::TagValue(std::int64_t{7}));
  a.time(0.5);
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  return std::move(mb).build();
}

TEST(Xmi, DocumentStructure) {
  const auto doc = xmi::to_document(tiny_model());
  ASSERT_TRUE(doc.has_root());
  EXPECT_EQ(doc.root().name(), "prophet:model");
  EXPECT_EQ(doc.root().attr_or("name", ""), "Tiny");
  EXPECT_NE(doc.root().child("profile"), nullptr);
  EXPECT_NE(doc.root().child("variables"), nullptr);
  EXPECT_NE(doc.root().child("functions"), nullptr);
  EXPECT_NE(doc.root().child("diagrams"), nullptr);
}

TEST(Xmi, RoundTripPreservesEverything) {
  const uml::Model original = tiny_model();
  const uml::Model reloaded = xmi::from_xml(xmi::to_xml(original));
  EXPECT_TRUE(xmi::equivalent(original, reloaded));

  EXPECT_EQ(reloaded.name(), "Tiny");
  EXPECT_EQ(reloaded.variables().size(), 2u);
  ASSERT_NE(reloaded.cost_function("F"), nullptr);
  EXPECT_EQ(reloaded.cost_function("F")->body, "x + GV");
  EXPECT_EQ(reloaded.cost_function("F")->parameters,
            (std::vector<std::string>{"x"}));
  const uml::Node* a = reloaded.node("n2");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->stereotype(), uml::stereo::kActionPlus);
  EXPECT_EQ(a->tag_string(uml::tag::kCost), "F(2)");
  EXPECT_EQ(a->tag_string(uml::tag::kCode), "GV = 1;");
  EXPECT_EQ(a->tag_number(uml::tag::kId), 7.0);
  EXPECT_EQ(a->tag_number(uml::tag::kTime), 0.5);
}

TEST(Xmi, GuardsSurviveEscaping) {
  uml::ModelBuilder mb("G");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef dec = d.decision();
  uml::NodeRef a = d.action("A");
  uml::NodeRef b = d.action("B");
  uml::NodeRef fin = d.final_node();
  d.flow(init, dec);
  d.flow(dec, a, "GV > 0 && P < 10");
  d.flow(dec, b, "else");
  d.flow(a, fin);
  d.flow(b, fin);
  const uml::Model model = std::move(mb).build();
  const uml::Model reloaded = xmi::from_xml(xmi::to_xml(model));
  EXPECT_TRUE(xmi::equivalent(model, reloaded));
  bool found = false;
  for (const auto& edge : reloaded.main_diagram()->edges()) {
    if (edge->guard() == "GV > 0 && P < 10") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Xmi, MultilineCodeFragmentUsesCdata) {
  uml::ModelBuilder mb("C");
  mb.global("GV", uml::VariableType::Real);
  mb.global("P", uml::VariableType::Real);
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef a = d.action("A").code("GV = 3;\nP = 16;");
  uml::NodeRef fin = d.final_node();
  d.sequence({init, a, fin});
  const uml::Model model = std::move(mb).build();
  const std::string xml = xmi::to_xml(model);
  EXPECT_NE(xml.find("<![CDATA[GV = 3;\nP = 16;]]>"), std::string::npos)
      << xml;
  const uml::Model reloaded = xmi::from_xml(xml);
  EXPECT_EQ(reloaded.node("n2")->tag_string(uml::tag::kCode),
            "GV = 3;\nP = 16;");
}

TEST(Xmi, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/xmi_roundtrip.xml";
  const uml::Model original = prophet::models::sample_model();
  xmi::save(original, path);
  const uml::Model reloaded = xmi::load(path);
  EXPECT_TRUE(xmi::equivalent(original, reloaded));
}

class XmiModelRoundTrip
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(XmiModelRoundTrip, SyntheticModelsRoundTrip) {
  const auto [activities, actions] = GetParam();
  const uml::Model model =
      prophet::models::synthetic_model(activities, actions);
  const uml::Model reloaded = xmi::from_xml(xmi::to_xml(model));
  EXPECT_TRUE(xmi::equivalent(model, reloaded));
  EXPECT_EQ(model.element_count(), reloaded.element_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, XmiModelRoundTrip,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 5},
                                           std::pair{8, 8},
                                           std::pair{16, 32}));

TEST(XmiModelRoundTrip, PaperModelsRoundTrip) {
  for (const uml::Model& model :
       {prophet::models::sample_model(),
        prophet::models::kernel6_model(100, 10, 1e-9),
        prophet::models::kernel6_detailed_model(10, 2, 1e-9),
        prophet::models::pingpong_model(1024, 5)}) {
    const uml::Model reloaded = xmi::from_xml(xmi::to_xml(model));
    EXPECT_TRUE(xmi::equivalent(model, reloaded)) << model.name();
  }
}

// --- Errors -------------------------------------------------------------------

TEST(XmiErrors, WrongRootElement) {
  EXPECT_THROW((void)xmi::from_xml("<wrong/>"), xmi::XmiError);
}

TEST(XmiErrors, MissingRequiredAttribute) {
  EXPECT_THROW((void)xmi::from_xml("<prophet:model name=\"x\" main=\"d1\">"
                                   "<diagrams><diagram name=\"no-id\"/>"
                                   "</diagrams></prophet:model>"),
               xmi::XmiError);
}

TEST(XmiErrors, UnknownNodeKind) {
  EXPECT_THROW(
      (void)xmi::from_xml("<prophet:model name=\"x\" main=\"d1\"><diagrams>"
                          "<diagram id=\"d1\" name=\"m\">"
                          "<node id=\"n1\" kind=\"hexagon\" name=\"A\"/>"
                          "</diagram></diagrams></prophet:model>"),
      xmi::XmiError);
}

TEST(XmiErrors, IllTypedTagValue) {
  EXPECT_THROW(
      (void)xmi::from_xml("<prophet:model name=\"x\" main=\"d1\"><diagrams>"
                          "<diagram id=\"d1\" name=\"m\">"
                          "<node id=\"n1\" kind=\"action\" name=\"A\">"
                          "<tag name=\"id\" type=\"Integer\">abc</tag>"
                          "</node></diagram></diagrams></prophet:model>"),
      xmi::XmiError);
}

TEST(XmiErrors, MalformedXmlPropagates) {
  EXPECT_THROW((void)xmi::from_xml("<prophet:model"),
               prophet::xml::ParseError);
}

}  // namespace
