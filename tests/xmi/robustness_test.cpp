// The malformed-document regression corpus (tests/xmi/malformed/) and
// the schema-version gate.  Contract: hostile input only ever exits the
// reader through xml::ParseError or xmi::XmiError — never a crash,
// never another exception type.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>

#include "prophet/xmi/xmi.hpp"
#include "prophet/xml/parser.hpp"

namespace {

namespace fs = std::filesystem;

const fs::path kCorpusDir =
    fs::path(PROPHET_SOURCE_DIR) / "tests" / "xmi" / "malformed";

// Which structured exit a file takes: "parse-error", "xmi-error", or
// "accepted".  Any other exception propagates and fails the test.
std::string outcome_of(const fs::path& file) {
  try {
    (void)prophet::xmi::load(file.string());
  } catch (const prophet::xml::ParseError&) {
    return "parse-error";
  } catch (const prophet::xmi::XmiError&) {
    return "xmi-error";
  }
  return "accepted";
}

TEST(XmiMalformedCorpus, OnlyStructuredErrorsEscape) {
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(kCorpusDir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    ++files;
    // outcome_of lets only the two structured error types through; any
    // other exception type propagates out of the harness and fails.
    const std::string outcome = outcome_of(entry.path());
    EXPECT_FALSE(outcome.empty()) << entry.path();
  }
  EXPECT_GE(files, 10u) << "corpus went missing from " << kCorpusDir;
}

TEST(XmiMalformedCorpus, HostileFilesAreRejected) {
  const std::set<std::string> must_reject = {
      "truncated.xml",   "unclosed.xml",     "deep_nesting.xml",
      "invalid_utf8.xml", "wrong_root.xml",  "empty.xml",
      "future_schema.xml", "bad_schema.xml",
  };
  for (const auto& name : must_reject) {
    const std::string outcome = outcome_of(kCorpusDir / name);
    EXPECT_NE(outcome, "accepted") << name;
  }
}

TEST(XmiSchema, CurrentVersionRoundTrips) {
  const std::string text =
      "<prophet:model name=\"M\" main=\"d1\" schema=\"1\">"
      "<diagrams><diagram id=\"d1\" name=\"main\"/></diagrams>"
      "</prophet:model>";
  EXPECT_EQ(prophet::xmi::from_xml(text).name(), "M");
}

TEST(XmiSchema, MissingSchemaAttributeAccepted) {
  const std::string text =
      "<prophet:model name=\"M\" main=\"d1\">"
      "<diagrams><diagram id=\"d1\" name=\"main\"/></diagrams>"
      "</prophet:model>";
  EXPECT_EQ(prophet::xmi::from_xml(text).name(), "M");
}

TEST(XmiSchema, FutureVersionRejectedWithVersionInMessage) {
  const std::string text =
      "<prophet:model name=\"M\" main=\"d1\" schema=\"2\">"
      "<diagrams><diagram id=\"d1\" name=\"main\"/></diagrams>"
      "</prophet:model>";
  try {
    (void)prophet::xmi::from_xml(text);
    FAIL() << "expected XmiError";
  } catch (const prophet::xmi::XmiError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("schema version 2"), std::string::npos);
    EXPECT_NE(what.find("max 1"), std::string::npos);
  }
}

TEST(XmiSchema, GarbageVersionRejected) {
  for (const std::string version : {"banana", "-3", "1x", "0"}) {
    const std::string text = "<prophet:model name=\"M\" main=\"d1\" schema=\"" +
                             version +
                             "\"><diagrams><diagram id=\"d1\" name=\"main\"/>"
                             "</diagrams></prophet:model>";
    EXPECT_THROW((void)prophet::xmi::from_xml(text), prophet::xmi::XmiError)
        << version;
  }
}

}  // namespace
