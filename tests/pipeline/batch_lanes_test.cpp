// Batched sweep evaluation (BatchOptions::batch_lanes): scalar and
// batched runs must be bit-identical on every deterministic CSV column,
// for every registered model, at several lane widths and thread counts;
// chunking must respect the eligibility rules (isolation, per-job
// limits, fault plans all fall back to singleton jobs); and the batch
// observability signals must fire.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "prophet/estimator/backend.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/pipeline/batch.hpp"

namespace {

using prophet::estimator::BackendKind;
using prophet::pipeline::BatchOptions;
using prophet::pipeline::BatchReport;
using prophet::pipeline::BatchRunner;
using prophet::pipeline::ScenarioGrid;

/// Runs every registered model over its suggested grid with the given
/// lane width and thread count.
BatchReport run_registry_sweep(int batch_lanes, int threads,
                               BackendKind backend = BackendKind::Analytic,
                               bool isolate = false) {
  BatchOptions options;
  options.threads = threads;
  options.batch_lanes = batch_lanes;
  options.backend = backend;
  options.run_codegen = false;
  options.isolate_jobs = isolate;
  BatchRunner runner(options);
  const auto& registry = prophet::models::Registry::builtin();
  for (const auto& name : registry.names()) {
    const int index = runner.add_model_reference("@" + name);
    const auto& info = registry.at(name);
    runner.add_sweep(index,
                     ScenarioGrid::parse(info.default_grid,
                                         info.default_params));
  }
  return runner.run();
}

/// The deterministic prefix of each CSV row: columns 1-17
/// (job..generated_bytes), everything before the host-time and
/// error-detail columns.
std::vector<std::string> deterministic_rows(const BatchReport& report) {
  std::vector<std::string> rows;
  std::istringstream csv(report.to_csv());
  std::string line;
  while (std::getline(csv, line)) {
    std::size_t at = 0;
    for (int field = 0; field < 17 && at != std::string::npos; ++field) {
      at = line.find(',', at + 1);
    }
    rows.push_back(line.substr(0, at == std::string::npos ? line.size() : at));
  }
  return rows;
}

TEST(BatchLanes, FullRegistryCsvIsBitIdenticalAcrossLaneWidthsAndThreads) {
  const auto reference = deterministic_rows(run_registry_sweep(1, 1));
  ASSERT_GT(reference.size(), 1u);
  for (const int threads : {1, 4}) {
    for (const int lanes : {1, 4, 8}) {
      const auto rows = deterministic_rows(run_registry_sweep(lanes, threads));
      ASSERT_EQ(rows.size(), reference.size())
          << "lanes " << lanes << " threads " << threads;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i], reference[i])
            << "row " << i << " lanes " << lanes << " threads " << threads;
      }
    }
  }
}

TEST(BatchLanes, CrossValidatingSweepsStayBitIdentical) {
  // Chunks run every selected engine through the batched stage; the
  // reference/candidate bookkeeping must match the singleton path.
  const auto reference =
      deterministic_rows(run_registry_sweep(1, 1, BackendKind::Both));
  const auto batched =
      deterministic_rows(run_registry_sweep(8, 2, BackendKind::Both));
  ASSERT_EQ(batched.size(), reference.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], reference[i]) << "row " << i;
  }
}

TEST(BatchLanes, IsolatedRunsIgnoreLaneWidth) {
  // --isolate re-runs the whole pipeline per job; batching would reuse
  // the compiled-model cache, so it must silently stand down.
  const auto reference = deterministic_rows(
      run_registry_sweep(1, 1, BackendKind::Analytic, true));
  const auto batched = deterministic_rows(
      run_registry_sweep(8, 1, BackendKind::Analytic, true));
  ASSERT_EQ(batched.size(), reference.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], reference[i]) << "row " << i;
  }
}

TEST(BatchLanes, MetricsReportBatchWidthAndBatchedEvals) {
  BatchOptions options;
  options.threads = 1;
  options.batch_lanes = 8;
  options.backend = BackendKind::Analytic;
  options.run_codegen = false;
  options.collect_metrics = true;
  BatchRunner runner(options);
  const int index = runner.add_model_reference("@kernel6");
  runner.add_sweep(index, ScenarioGrid::parse("np=1..16 nodes=1,2"));
  const BatchReport report = runner.run();
  for (const auto& result : report.results) {
    ASSERT_TRUE(result.ok) << result.error;
  }
  // The vectorized VM actually ran...
  EXPECT_GT(report.metrics.counter_value("expr.batch_evals"), 0u);
  // ...and the configured lane width is visible.
  EXPECT_EQ(report.metrics.gauge_value("expr.batch_width"), 8.0);
}

TEST(BatchLanes, PerJobLimitsDisableChunking) {
  // Per-job guard budgets need per-job attribution (tripped_limit per
  // lane), so active limits force the singleton path — and results stay
  // identical to an unlimited run when nothing trips.
  BatchOptions base;
  base.threads = 1;
  base.backend = BackendKind::Analytic;
  base.run_codegen = false;

  BatchOptions limited = base;
  limited.batch_lanes = 8;
  limited.limits.max_vm_instructions = 100000000;  // generous: never trips

  auto make_runner = [](const BatchOptions& options) {
    BatchRunner runner(options);
    const int index = runner.add_model_reference("@kernel6");
    runner.add_sweep(index, ScenarioGrid::parse("np=1..8"));
    return runner;
  };
  const BatchReport plain = make_runner(base).run();
  const BatchReport guarded = make_runner(limited).run();
  ASSERT_EQ(plain.results.size(), guarded.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_EQ(plain.results[i].ok, guarded.results[i].ok);
    EXPECT_EQ(plain.results[i].predicted_time,
              guarded.results[i].predicted_time);
    EXPECT_TRUE(guarded.results[i].tripped_limit.empty());
  }
}

}  // namespace
