// BatchRunner: thread-count determinism, per-job error isolation, seeds,
// report aggregation, and the compiled-model cache (cached vs isolated
// equivalence, prepare-failure containment, per-stage timings).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"
#include "prophet/uml/builder.hpp"

namespace pipeline = prophet::pipeline;
namespace machine = prophet::machine;
using prophet::estimator::BackendKind;

namespace {

// --- BatchRunner -------------------------------------------------------------

pipeline::BatchRunner sweep_runner(int threads) {
  pipeline::BatchOptions options;
  options.threads = threads;
  pipeline::BatchRunner runner(options);
  const int sample =
      runner.add_model("sample", prophet::models::sample_model());
  const int kernel = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  const auto grid = pipeline::ScenarioGrid::parse("np=1..4:*2 nodes=1,2");
  runner.add_sweep(sample, grid);
  runner.add_sweep(kernel, grid);
  return runner;
}

TEST(BatchRunner, AddModelReferenceResolvesTheRegistry) {
  pipeline::BatchRunner runner;
  const int index = runner.add_model_reference("@kernel6(n=8, m=1)");
  runner.add_scenario(index, {});
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.results[0].ok) << report.results[0].error;
  EXPECT_EQ(report.results[0].model_name, "@kernel6(n=8, m=1)");
  // 8*7/2 * 1 sweep * 1e-8 s.
  EXPECT_NEAR(report.results[0].predicted_time, 28e-8, 1e-15);
  EXPECT_THROW((void)runner.add_model_reference("@nope"),
               std::invalid_argument);
}

TEST(BatchRunner, RunsEveryScenario) {
  auto runner = sweep_runner(1);
  EXPECT_EQ(runner.model_count(), 2u);
  ASSERT_EQ(runner.job_count(), 12u);

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 12u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.predicted_time, 0.0) << result.model_name;
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.generated_bytes, 0u);  // codegen ran per job
  }
  const auto stats = report.stats();
  EXPECT_EQ(stats.ok, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LE(stats.min_predicted, stats.mean_predicted);
  EXPECT_LE(stats.mean_predicted, stats.max_predicted);
}

TEST(BatchRunner, ResultsAreIdenticalAcrossThreadCounts) {
  const auto serial = sweep_runner(1).run();
  for (const int threads : {2, 4, 8}) {
    const auto parallel = sweep_runner(threads).run();
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      const auto& a = serial.results[i];
      const auto& b = parallel.results[i];
      EXPECT_EQ(a.job_id, b.job_id);
      EXPECT_EQ(a.model_name, b.model_name);
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.ok, b.ok);
      // Bit-identical simulation results, not just approximately equal.
      EXPECT_EQ(a.predicted_time, b.predicted_time)
          << "job " << i << " at " << threads << " threads";
      EXPECT_EQ(a.events, b.events);
    }
  }
}

TEST(BatchRunner, OneBadModelDoesNotPoisonTheBatch) {
  pipeline::BatchOptions options;
  options.threads = 2;
  pipeline::BatchRunner runner(options);
  const int good = runner.add_model("good", prophet::models::sample_model());
  const int bad = runner.add_model_xml("bad", "<this is not xmi");
  runner.add_scenario(good, {});
  runner.add_scenario(bad, {});
  runner.add_scenario(good, {});

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_EQ(report.results[1].error.rfind("parse:", 0), 0u)
      << report.results[1].error;
  EXPECT_TRUE(report.results[2].ok);

  const auto stats = report.stats();
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(BatchRunner, InvalidParametersFailOnlyTheirJob) {
  pipeline::BatchOptions options;
  options.threads = 2;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model("sample", prophet::models::sample_model());
  machine::SystemParameters broken;
  broken.network_bandwidth = -1;  // rejected by SystemParameters::validate
  runner.add_scenario(m, broken);
  runner.add_scenario(m, {});

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].error.rfind("simulate:", 0), 0u)
      << report.results[0].error;
  EXPECT_TRUE(report.results[1].ok);
}

TEST(BatchRunner, SeedsAreDeterministicAndPerJob) {
  EXPECT_EQ(pipeline::derive_seed(1, 0), pipeline::derive_seed(1, 0));
  EXPECT_NE(pipeline::derive_seed(1, 0), pipeline::derive_seed(1, 1));
  EXPECT_NE(pipeline::derive_seed(1, 0), pipeline::derive_seed(2, 0));

  auto runner = sweep_runner(1);
  std::set<std::uint64_t> seeds;
  for (const auto& job : runner.jobs()) {
    EXPECT_EQ(job.seed, pipeline::derive_seed(
                            runner.options().base_seed, job.id));
    seeds.insert(job.seed);
  }
  EXPECT_EQ(seeds.size(), runner.jobs().size());
}

TEST(BatchRunner, SweepAllCoversEveryModel) {
  pipeline::BatchRunner runner;
  runner.add_model("a", prophet::models::sample_model());
  runner.add_model("b", prophet::models::pingpong_model(1024, 4));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=2,4"));
  ASSERT_EQ(runner.job_count(), 4u);
  EXPECT_EQ(runner.jobs()[0].model_name, "a");
  EXPECT_EQ(runner.jobs()[2].model_name, "b");
}

TEST(BatchRunner, ReportFormatsSummaryAndCsv) {
  pipeline::BatchOptions options;
  options.threads = 1;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1,2"));
  const auto report = runner.run();

  const std::string summary = report.summary();
  EXPECT_NE(summary.find("2 job(s)"), std::string::npos) << summary;
  EXPECT_NE(summary.find("sample"), std::string::npos);
  EXPECT_NE(summary.find("ok 2 / failed 0"), std::string::npos) << summary;

  const std::string csv = report.to_csv();
  // Header + one row per scenario.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
  EXPECT_NE(csv.find("job,model,np"), std::string::npos);
}

TEST(BatchRunner, CsvQuotesModelNamesWithCommas) {
  pipeline::BatchOptions options;
  options.threads = 1;
  pipeline::BatchRunner runner(options);
  // File-registered models use the path as the name; a comma in it must
  // not shift the CSV columns.  Per RFC 4180 the field is quoted — the
  // name survives byte-exact instead of being rewritten.
  const int m =
      runner.add_model("models/v2,final.xml", prophet::models::sample_model());
  runner.add_scenario(m, {});
  const auto report = runner.run();

  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("\"models/v2,final.xml\""), std::string::npos) << csv;
  EXPECT_EQ(csv.find(';'), std::string::npos) << csv;
}

TEST(BatchRunner, AnalyticBackendRunsWithoutSimulation) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.backend = prophet::estimator::BackendKind::Analytic;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1..8:*2"));
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.backend, prophet::estimator::BackendKind::Analytic);
    EXPECT_GT(result.predicted_time, 0.0);
    EXPECT_EQ(result.analytic_predicted, result.predicted_time);
    EXPECT_EQ(result.events, 0u);  // nothing was simulated
  }
}

TEST(BatchRunner, BothBackendCrossValidates) {
  pipeline::BatchOptions options;
  options.threads = 2;
  options.backend = prophet::estimator::BackendKind::Both;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1..8:*2"));
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.predicted_time, 0.0);   // simulator reference
    EXPECT_GT(result.analytic_predicted, 0.0);
    EXPECT_GT(result.events, 0u);            // the simulator did run
    // Deterministic compute-only model: the backends agree tightly.
    EXPECT_LT(result.relative_error, 0.01) << result.params.processes;
  }
  const auto stats = report.stats();
  EXPECT_EQ(stats.compared, 4u);
  EXPECT_LE(stats.mean_rel_error, stats.max_rel_error);
  EXPECT_LT(stats.max_rel_error, 0.01);
  // The summary and CSV carry the cross-validation columns.
  EXPECT_NE(report.summary().find("rel err"), std::string::npos);
  EXPECT_NE(report.to_csv().find(",both,"), std::string::npos);
}

TEST(BatchRunner, BackendSelectionIsDeterministicAcrossThreads) {
  const auto run_with = [](int threads) {
    pipeline::BatchOptions options;
    options.threads = threads;
    options.backend = prophet::estimator::BackendKind::Analytic;
    pipeline::BatchRunner runner(options);
    runner.add_model("sample", prophet::models::sample_model());
    runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=1..4 nodes=1,2"));
    return runner.run();
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].predicted_time,
              parallel.results[i].predicted_time)
        << "job " << i;
  }
}

// --- Compiled-model cache ----------------------------------------------------

pipeline::BatchReport run_sweep(int threads, bool isolate, BackendKind kind) {
  pipeline::BatchOptions options;
  options.threads = threads;
  options.isolate_jobs = isolate;
  options.backend = kind;
  pipeline::BatchRunner runner(options);
  runner.add_model("sample", prophet::models::sample_model());
  runner.add_model("kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=1..4:*2 nodes=1,2"));
  return runner.run();
}

// The acceptance property: cached and isolated sweeps produce
// bit-identical predictions for every backend at every thread count.
TEST(BatchRunner, CachedMatchesIsolatedBitIdentical) {
  for (const BackendKind kind :
       {BackendKind::Simulation, BackendKind::Analytic, BackendKind::Both}) {
    const auto isolated = run_sweep(1, /*isolate=*/true, kind);
    for (const int threads : {1, 2, 4}) {
      const auto cached = run_sweep(threads, /*isolate=*/false, kind);
      ASSERT_EQ(cached.results.size(), isolated.results.size());
      EXPECT_GT(cached.models_prepared, 0);
      EXPECT_EQ(isolated.models_prepared, 0);
      for (std::size_t i = 0; i < isolated.results.size(); ++i) {
        const auto& a = isolated.results[i];
        const auto& b = cached.results[i];
        SCOPED_TRACE("backend " +
                     std::string(prophet::estimator::to_string(kind)) +
                     ", job " + std::to_string(i) + ", " +
                     std::to_string(threads) + " thread(s)");
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.backend, b.backend);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(a.predicted_time, b.predicted_time);
        EXPECT_EQ(a.analytic_predicted, b.analytic_predicted);
        EXPECT_EQ(a.relative_error, b.relative_error);
        EXPECT_EQ(a.events, b.events);
        EXPECT_EQ(a.check_warnings, b.check_warnings);
        EXPECT_EQ(a.generated_bytes, b.generated_bytes);
      }
    }
  }
}

// A model whose compile fails marks all of its jobs failed with the
// stage-prefixed error, without poisoning other models' jobs.
TEST(BatchRunner, PrepareFailureIsContainedPerModel) {
  pipeline::BatchOptions options;
  options.threads = 2;
  pipeline::BatchRunner runner(options);  // cached mode (default)
  const int good = runner.add_model("good", prophet::models::sample_model());
  const int bad = runner.add_model_xml("bad", "<this is not xmi");
  runner.add_scenario(good, {});
  runner.add_scenario(bad, {});
  runner.add_scenario(bad, {});
  runner.add_scenario(good, {});

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  EXPECT_TRUE(report.results[0].ok) << report.results[0].error;
  EXPECT_TRUE(report.results[3].ok) << report.results[3].error;
  for (const std::size_t i : {std::size_t{1}, std::size_t{2}}) {
    EXPECT_FALSE(report.results[i].ok);
    EXPECT_EQ(report.results[i].error.rfind("parse:", 0), 0u)
        << report.results[i].error;
  }
  // Both failed jobs carry the same one-time compile error.
  EXPECT_EQ(report.results[1].error, report.results[2].error);
  EXPECT_EQ(report.stats().failed, 2u);
}

// A model that parses but cannot be compiled by a backend fails with the
// same stage-prefixed error text in cached and isolated mode (the stage
// chain is shared, so the modes cannot diverge).
TEST(BatchRunner, PrepareFailureMatchesIsolatedStageAndError) {
  const auto run_bad = [](bool isolate) {
    pipeline::BatchOptions options;
    options.threads = 1;
    options.isolate_jobs = isolate;
    // Skip the checker/transformer so the defect reaches Backend::prepare.
    options.run_checker = false;
    options.run_codegen = false;
    pipeline::BatchRunner runner(options);
    prophet::uml::ModelBuilder mb("bad");
    prophet::uml::DiagramBuilder main = mb.diagram("main");
    prophet::uml::NodeRef init = main.initial();
    prophet::uml::NodeRef bad = main.action("Bad").cost("1 + ");
    prophet::uml::NodeRef fin = main.final_node();
    main.sequence({init, bad, fin});
    runner.add_model("bad", std::move(mb).build());
    runner.add_scenario(0, {});
    return runner.run();
  };
  const auto cached = run_bad(false);
  const auto isolated = run_bad(true);
  ASSERT_EQ(cached.results.size(), 1u);
  ASSERT_EQ(isolated.results.size(), 1u);
  EXPECT_FALSE(cached.results[0].ok);
  EXPECT_FALSE(isolated.results[0].ok);
  EXPECT_EQ(cached.results[0].error.rfind("simulate:", 0), 0u)
      << cached.results[0].error;
  EXPECT_EQ(cached.results[0].error, isolated.results[0].error);
  // A failed compile is not a prepared model.
  EXPECT_EQ(cached.models_prepared, 0);
}

// Jobs land on the right cache entry even when earlier models have no
// jobs at all (entry indexing, not job order, selects the model).
TEST(BatchRunner, CacheEntriesFollowModelIndices) {
  pipeline::BatchRunner runner;
  runner.add_model("unused", prophet::models::pingpong_model(1024, 8));
  const int used =
      runner.add_model("kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_scenario(used, {});
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.results[0].ok) << report.results[0].error;
  // Only the referenced model was compiled.
  EXPECT_EQ(report.models_prepared, 1);
}

TEST(BatchRunner, StageTimingsFollowTheMode) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.isolate_jobs = true;
  pipeline::BatchRunner isolated_runner(options);
  const int m = isolated_runner.add_model(
      "sample", prophet::models::sample_model());
  isolated_runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1,2"));
  const auto isolated = isolated_runner.run();
  EXPECT_EQ(isolated.models_prepared, 0);
  EXPECT_EQ(isolated.prepare_seconds, 0.0);
  for (const auto& result : isolated.results) {
    ASSERT_TRUE(result.ok) << result.error;
    // Isolated jobs pay every stage themselves.
    EXPECT_GT(result.parse_seconds, 0.0);
    EXPECT_GT(result.check_seconds, 0.0);
    EXPECT_GT(result.transform_seconds, 0.0);
    EXPECT_GT(result.estimate_seconds, 0.0);
  }

  options.isolate_jobs = false;
  pipeline::BatchRunner cached_runner(options);
  const int c = cached_runner.add_model(
      "sample", prophet::models::sample_model());
  cached_runner.add_sweep(c, pipeline::ScenarioGrid::parse("np=1,2"));
  const auto cached = cached_runner.run();
  EXPECT_EQ(cached.models_prepared, 1);
  EXPECT_GT(cached.prepare_seconds, 0.0);
  EXPECT_NE(cached.summary().find("compiled-model cache"),
            std::string::npos);
  for (const auto& result : cached.results) {
    ASSERT_TRUE(result.ok) << result.error;
    // Cached jobs are parameter-only evaluations: the per-model stages
    // were paid once, in prepare_seconds.
    EXPECT_EQ(result.parse_seconds, 0.0);
    EXPECT_EQ(result.check_seconds, 0.0);
    EXPECT_EQ(result.transform_seconds, 0.0);
    EXPECT_GT(result.estimate_seconds, 0.0);
    EXPECT_LE(result.estimate_seconds, result.wall_seconds);
  }
}

TEST(BatchRunner, CsvCarriesStageTimingColumns) {
  pipeline::BatchOptions options;
  options.threads = 1;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model("sample", prophet::models::sample_model());
  runner.add_scenario(m, {});
  const std::string csv = runner.run().to_csv();
  EXPECT_NE(csv.find(",wall_s,parse_s,check_s,transform_s,estimate_s,"
                     "tripped_limit,error"),
            std::string::npos)
      << csv;
}

TEST(BatchRunner, RejectsOutOfRangeModelIndex) {
  pipeline::BatchRunner runner;
  EXPECT_THROW(runner.add_scenario(0, {}), std::out_of_range);
  runner.add_model("sample", prophet::models::sample_model());
  EXPECT_THROW(runner.add_scenario(1, {}), std::out_of_range);
  EXPECT_THROW(runner.add_scenario(-1, {}), std::out_of_range);
}

}  // namespace
