// BatchRunner: thread-count determinism, per-job error isolation, seeds,
// and report aggregation over full parse -> check -> transform -> simulate
// pipeline jobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "prophet/pipeline/batch.hpp"
#include "prophet/pipeline/scenario.hpp"
#include "prophet/prophet.hpp"

namespace pipeline = prophet::pipeline;
namespace machine = prophet::machine;

namespace {

// --- BatchRunner -------------------------------------------------------------

pipeline::BatchRunner sweep_runner(int threads) {
  pipeline::BatchOptions options;
  options.threads = threads;
  pipeline::BatchRunner runner(options);
  const int sample =
      runner.add_model("sample", prophet::models::sample_model());
  const int kernel = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  const auto grid = pipeline::ScenarioGrid::parse("np=1..4:*2 nodes=1,2");
  runner.add_sweep(sample, grid);
  runner.add_sweep(kernel, grid);
  return runner;
}

TEST(BatchRunner, RunsEveryScenario) {
  auto runner = sweep_runner(1);
  EXPECT_EQ(runner.model_count(), 2u);
  ASSERT_EQ(runner.job_count(), 12u);

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 12u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.predicted_time, 0.0) << result.model_name;
    EXPECT_GT(result.events, 0u);
    EXPECT_GT(result.generated_bytes, 0u);  // codegen ran per job
  }
  const auto stats = report.stats();
  EXPECT_EQ(stats.ok, 12u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_LE(stats.min_predicted, stats.mean_predicted);
  EXPECT_LE(stats.mean_predicted, stats.max_predicted);
}

TEST(BatchRunner, ResultsAreIdenticalAcrossThreadCounts) {
  const auto serial = sweep_runner(1).run();
  for (const int threads : {2, 4, 8}) {
    const auto parallel = sweep_runner(threads).run();
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
      const auto& a = serial.results[i];
      const auto& b = parallel.results[i];
      EXPECT_EQ(a.job_id, b.job_id);
      EXPECT_EQ(a.model_name, b.model_name);
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.ok, b.ok);
      // Bit-identical simulation results, not just approximately equal.
      EXPECT_EQ(a.predicted_time, b.predicted_time)
          << "job " << i << " at " << threads << " threads";
      EXPECT_EQ(a.events, b.events);
    }
  }
}

TEST(BatchRunner, OneBadModelDoesNotPoisonTheBatch) {
  pipeline::BatchOptions options;
  options.threads = 2;
  pipeline::BatchRunner runner(options);
  const int good = runner.add_model("good", prophet::models::sample_model());
  const int bad = runner.add_model_xml("bad", "<this is not xmi");
  runner.add_scenario(good, {});
  runner.add_scenario(bad, {});
  runner.add_scenario(good, {});

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 3u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_EQ(report.results[1].error.rfind("parse:", 0), 0u)
      << report.results[1].error;
  EXPECT_TRUE(report.results[2].ok);

  const auto stats = report.stats();
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(BatchRunner, InvalidParametersFailOnlyTheirJob) {
  pipeline::BatchRunner runner(pipeline::BatchOptions{.threads = 2});
  const int m = runner.add_model("sample", prophet::models::sample_model());
  machine::SystemParameters broken;
  broken.network_bandwidth = -1;  // rejected by SystemParameters::validate
  runner.add_scenario(m, broken);
  runner.add_scenario(m, {});

  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].error.rfind("simulate:", 0), 0u)
      << report.results[0].error;
  EXPECT_TRUE(report.results[1].ok);
}

TEST(BatchRunner, SeedsAreDeterministicAndPerJob) {
  EXPECT_EQ(pipeline::derive_seed(1, 0), pipeline::derive_seed(1, 0));
  EXPECT_NE(pipeline::derive_seed(1, 0), pipeline::derive_seed(1, 1));
  EXPECT_NE(pipeline::derive_seed(1, 0), pipeline::derive_seed(2, 0));

  auto runner = sweep_runner(1);
  std::set<std::uint64_t> seeds;
  for (const auto& job : runner.jobs()) {
    EXPECT_EQ(job.seed, pipeline::derive_seed(
                            runner.options().base_seed, job.id));
    seeds.insert(job.seed);
  }
  EXPECT_EQ(seeds.size(), runner.jobs().size());
}

TEST(BatchRunner, SweepAllCoversEveryModel) {
  pipeline::BatchRunner runner;
  runner.add_model("a", prophet::models::sample_model());
  runner.add_model("b", prophet::models::pingpong_model(1024, 4));
  runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=2,4"));
  ASSERT_EQ(runner.job_count(), 4u);
  EXPECT_EQ(runner.jobs()[0].model_name, "a");
  EXPECT_EQ(runner.jobs()[2].model_name, "b");
}

TEST(BatchRunner, ReportFormatsSummaryAndCsv) {
  pipeline::BatchRunner runner(pipeline::BatchOptions{.threads = 1});
  const int m = runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1,2"));
  const auto report = runner.run();

  const std::string summary = report.summary();
  EXPECT_NE(summary.find("2 job(s)"), std::string::npos) << summary;
  EXPECT_NE(summary.find("sample"), std::string::npos);
  EXPECT_NE(summary.find("ok 2 / failed 0"), std::string::npos) << summary;

  const std::string csv = report.to_csv();
  // Header + one row per scenario.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
  EXPECT_NE(csv.find("job,model,np"), std::string::npos);
}

TEST(BatchRunner, CsvSanitizesModelNamesWithCommas) {
  pipeline::BatchRunner runner(pipeline::BatchOptions{.threads = 1});
  // File-registered models use the path as the name; a comma in it must
  // not shift the CSV columns.
  const int m =
      runner.add_model("models/v2,final.xml", prophet::models::sample_model());
  runner.add_scenario(m, {});
  const auto report = runner.run();

  const std::string csv = report.to_csv();
  const std::size_t header_end = csv.find('\n');
  const std::string row = csv.substr(header_end + 1);
  EXPECT_EQ(std::count(csv.begin(), csv.begin() + header_end, ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_NE(csv.find("models/v2;final.xml"), std::string::npos) << csv;
}

TEST(BatchRunner, AnalyticBackendRunsWithoutSimulation) {
  pipeline::BatchOptions options;
  options.threads = 1;
  options.backend = prophet::estimator::BackendKind::Analytic;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1..8:*2"));
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.backend, prophet::estimator::BackendKind::Analytic);
    EXPECT_GT(result.predicted_time, 0.0);
    EXPECT_EQ(result.analytic_predicted, result.predicted_time);
    EXPECT_EQ(result.events, 0u);  // nothing was simulated
  }
}

TEST(BatchRunner, BothBackendCrossValidates) {
  pipeline::BatchOptions options;
  options.threads = 2;
  options.backend = prophet::estimator::BackendKind::Both;
  pipeline::BatchRunner runner(options);
  const int m = runner.add_model(
      "kernel6", prophet::models::kernel6_model(64, 16, 1e-8));
  runner.add_sweep(m, pipeline::ScenarioGrid::parse("np=1..8:*2"));
  const auto report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& result : report.results) {
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.predicted_time, 0.0);   // simulator reference
    EXPECT_GT(result.analytic_predicted, 0.0);
    EXPECT_GT(result.events, 0u);            // the simulator did run
    // Deterministic compute-only model: the backends agree tightly.
    EXPECT_LT(result.relative_error, 0.01) << result.params.processes;
  }
  const auto stats = report.stats();
  EXPECT_EQ(stats.compared, 4u);
  EXPECT_LE(stats.mean_rel_error, stats.max_rel_error);
  EXPECT_LT(stats.max_rel_error, 0.01);
  // The summary and CSV carry the cross-validation columns.
  EXPECT_NE(report.summary().find("rel err"), std::string::npos);
  EXPECT_NE(report.to_csv().find(",both,"), std::string::npos);
}

TEST(BatchRunner, BackendSelectionIsDeterministicAcrossThreads) {
  const auto run_with = [](int threads) {
    pipeline::BatchOptions options;
    options.threads = threads;
    options.backend = prophet::estimator::BackendKind::Analytic;
    pipeline::BatchRunner runner(options);
    runner.add_model("sample", prophet::models::sample_model());
    runner.add_sweep_all(pipeline::ScenarioGrid::parse("np=1..4 nodes=1,2"));
    return runner.run();
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].predicted_time,
              parallel.results[i].predicted_time)
        << "job " << i;
  }
}

TEST(BatchRunner, RejectsOutOfRangeModelIndex) {
  pipeline::BatchRunner runner;
  EXPECT_THROW(runner.add_scenario(0, {}), std::out_of_range);
  runner.add_model("sample", prophet::models::sample_model());
  EXPECT_THROW(runner.add_scenario(1, {}), std::out_of_range);
  EXPECT_THROW(runner.add_scenario(-1, {}), std::out_of_range);
}

}  // namespace
