// Guardrails in the batch pipeline: per-job timeouts and resource
// limits, sweep-wide deadlines and cancellation, deterministic fault
// injection, and the RFC 4180 escaping of the CSV free-text columns.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "prophet/estimator/backend.hpp"
#include "prophet/guard/guard.hpp"
#include "prophet/models/builtins.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/pipeline/batch.hpp"

namespace {

namespace guard = prophet::guard;
using prophet::estimator::BackendKind;
using prophet::pipeline::BatchOptions;
using prophet::pipeline::BatchReport;
using prophet::pipeline::BatchRunner;
using prophet::pipeline::ScenarioGrid;
using prophet::pipeline::ScenarioResult;

TEST(BatchCsv, QuotesErrorAndModelFieldsPerRfc4180) {
  BatchReport report;
  ScenarioResult bad;
  bad.job_id = 0;
  bad.model_name = "models/weird,name.xmi";
  bad.ok = false;
  bad.error = "check: unknown variable \"GV\", line 3\nsecond line";
  bad.tripped_limit = "";
  ScenarioResult good;
  good.job_id = 1;
  good.model_name = "clean";
  good.ok = true;
  good.predicted_time = 1.5;
  report.results = {bad, good};

  const std::string csv = report.to_csv();
  // The comma-bearing model name and the error with quotes, a comma and
  // a newline are wrapped; embedded quotes are doubled.
  EXPECT_NE(csv.find("\"models/weird,name.xmi\""), std::string::npos);
  EXPECT_NE(
      csv.find("\"check: unknown variable \"\"GV\"\", line 3\nsecond line\""),
      std::string::npos);
  // Clean fields stay unquoted, and the header carries the new column.
  EXPECT_NE(csv.find("1,clean,"), std::string::npos);
  EXPECT_EQ(csv.find("\"clean\""), std::string::npos);
  EXPECT_NE(csv.find(",tripped_limit,error\n"), std::string::npos);
}

TEST(BatchGuards, JobTimeoutFailsRunawayJobAndSpareTheRest) {
  BatchOptions options;
  options.threads = 1;
  options.job_timeout_seconds = 0.2;
  BatchRunner runner(options);
  const int sample = runner.add_model("sample", prophet::models::sample_model());
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e12));
  runner.add_sweep(sample, ScenarioGrid::parse("np=1", {}));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_EQ(report.results[1].tripped_limit, "wall_clock");
  EXPECT_NE(report.results[1].error.find("wall_clock"), std::string::npos);

  const auto stats = report.stats();
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_NE(report.summary().find("timed out"), std::string::npos);
  // The metric layer counts it too.
  const auto metrics = report.derived_metrics();
  EXPECT_EQ(metrics.counter_value("batch.jobs_timed_out"), 1);
}

TEST(BatchGuards, SimEventLimitNamesTheBound) {
  BatchOptions options;
  options.threads = 1;
  options.limits.max_sim_events = 50;
  BatchRunner runner(options);
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e6));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].tripped_limit, "sim_events");
}

TEST(BatchGuards, LoopTripLimitNamesTheBound) {
  BatchOptions options;
  options.threads = 1;
  options.limits.max_loop_trips = 100;
  BatchRunner runner(options);
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e6));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].tripped_limit, "loop_trips");
}

TEST(BatchGuards, LimitsDoNotChangeSuccessfulPredictions) {
  const auto run_once = [](bool limited) {
    BatchOptions options;
    options.threads = 1;
    if (limited) {
      options.limits.max_sim_events = 1000000;
      options.limits.max_loop_trips = 1000000;
      options.job_timeout_seconds = 600;
    }
    BatchRunner runner(options);
    const int sample =
        runner.add_model("sample", prophet::models::sample_model());
    runner.add_sweep(sample, ScenarioGrid::parse("np=1..4:+1", {}));
    return runner.run();
  };
  const BatchReport plain = run_once(false);
  const BatchReport guarded = run_once(true);
  ASSERT_EQ(plain.results.size(), guarded.results.size());
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    EXPECT_TRUE(guarded.results[i].ok);
    EXPECT_EQ(plain.results[i].predicted_time,
              guarded.results[i].predicted_time);
    EXPECT_EQ(plain.results[i].events, guarded.results[i].events);
  }
}

TEST(BatchGuards, PreCancelledSweepBudgetFailsEveryJobGracefully) {
  guard::Budget sweep;
  sweep.cancel();
  BatchOptions options;
  options.threads = 2;
  options.sweep_budget = &sweep;
  BatchRunner runner(options);
  const int sample = runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(sample, ScenarioGrid::parse("np=1..4:+1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  for (const auto& result : report.results) {
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.tripped_limit, "cancelled");
  }
  const auto stats = report.stats();
  EXPECT_EQ(stats.cancelled, 4u);
  EXPECT_NE(report.summary().find("cancelled"), std::string::npos);
}

TEST(BatchGuards, SweepDeadlineDrainsRemainingJobs) {
  BatchOptions options;
  options.threads = 1;
  options.deadline_seconds = 0.3;
  BatchRunner runner(options);
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e12));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1..4:+1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 4u);
  std::size_t failed = 0;
  for (const auto& result : report.results) {
    EXPECT_FALSE(result.ok);
    failed += result.ok ? 0 : 1;
    EXPECT_FALSE(result.tripped_limit.empty());
  }
  EXPECT_EQ(failed, 4u);
  // The report still aggregates: wall time bounded well under the
  // 4-job * runaway worst case.
  EXPECT_LT(report.wall_seconds, 5.0);
}

TEST(BatchFaults, InjectedParseFaultFailsJobsNotTheBatch) {
  guard::FaultPlan plan = guard::FaultPlan::parse("estimate@1");
  BatchOptions options;
  options.threads = 1;
  options.fault_plan = &plan;
  BatchRunner runner(options);
  const int sample = runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(sample, ScenarioGrid::parse("np=1,2", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_NE(report.results[0].error.find("injected fault"),
            std::string::npos);
  EXPECT_TRUE(report.results[0].tripped_limit.empty());
  EXPECT_TRUE(report.results[1].ok);
}

TEST(BatchFaults, CompileStageFaultReportsStage) {
  guard::FaultPlan plan = guard::FaultPlan::parse("lower");
  BatchOptions options;
  options.threads = 1;
  options.fault_plan = &plan;
  BatchRunner runner(options);
  const int sample = runner.add_model("sample", prophet::models::sample_model());
  runner.add_sweep(sample, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_NE(report.results[0].error.find("injected fault at site 'lower'"),
            std::string::npos);
}

TEST(BatchFaults, MidSimulationCancelFault) {
  guard::FaultPlan plan = guard::FaultPlan::parse("cancel@100");
  BatchOptions options;
  options.threads = 1;
  options.fault_plan = &plan;
  BatchRunner runner(options);
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e6));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].tripped_limit, "cancelled");
}

TEST(BatchGuards, CodegenRunawayTripsWallClockNotHang) {
  // The guard contract crosses the C ABI: a runaway model evaluated by
  // the generated native code must trip the per-job wall clock from
  // inside its compiled loops — and the error carries the codegen
  // stage prefix.
  BatchOptions options;
  options.threads = 1;
  options.backend = BackendKind::Codegen;
  options.job_timeout_seconds = 0.3;
  BatchRunner runner(options);
  const int spin = runner.add_model("spin", prophet::models::spin_model(1e12));
  runner.add_sweep(spin, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  ASSERT_EQ(report.results.size(), 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_EQ(report.results[0].tripped_limit, "wall_clock");
  EXPECT_EQ(report.results[0].error.rfind("cgen: ", 0), 0u)
      << report.results[0].error;
  const auto stats = report.stats();
  EXPECT_EQ(stats.timed_out, 1u);
}

TEST(BatchFaults, CgenCompileFaultFailsOneModelNotTheBatch) {
  // A failing toolchain invocation is a per-model, stage-prefixed job
  // error; later models still compile and evaluate.  A fresh cache
  // directory guarantees the toolchain actually runs (cache hits skip
  // the fault site by design).
  const std::string cache =
      ::testing::TempDir() + "/cgen-fault-batch-cache";
  std::filesystem::remove_all(cache);
  const char* saved = std::getenv("PROPHET_CGEN_CACHE");
  const std::string saved_value = saved != nullptr ? saved : "";
  ::setenv("PROPHET_CGEN_CACHE", cache.c_str(), 1);

  guard::FaultPlan plan = guard::FaultPlan::parse("cgen-compile@1");
  BatchOptions options;
  options.threads = 1;
  options.backend = BackendKind::Codegen;
  options.fault_plan = &plan;
  BatchRunner runner(options);
  const int sample =
      runner.add_model("sample", prophet::models::sample_model());
  const int kernel6 =
      runner.add_model("kernel6", prophet::models::kernel6_model(8, 1, 1e-8));
  runner.add_sweep(sample, ScenarioGrid::parse("np=1", {}));
  runner.add_sweep(kernel6, ScenarioGrid::parse("np=1", {}));

  const BatchReport report = runner.run();
  if (saved != nullptr) {
    ::setenv("PROPHET_CGEN_CACHE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("PROPHET_CGEN_CACHE");
  }
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_NE(report.results[0].error.find(
                "cgen: injected fault at site 'cgen-compile'"),
            std::string::npos)
      << report.results[0].error;
  EXPECT_TRUE(report.results[0].tripped_limit.empty());
  EXPECT_TRUE(report.results[1].ok) << report.results[1].error;
  EXPECT_GT(report.results[1].codegen_predicted, 0.0);
}

TEST(BatchGuards, HiddenSpinModelResolvesButIsUnlisted) {
  const auto& registry = prophet::models::Registry::builtin();
  EXPECT_NE(registry.find("spin"), nullptr);
  for (const auto& name : registry.names()) {
    EXPECT_NE(name, "spin");
  }
  EXPECT_EQ(registry.available().find("@spin"), std::string::npos);
  EXPECT_EQ(registry.describe().find("@spin"), std::string::npos);
  // Resolvable by exact reference with knobs.
  const auto model = registry.make("@spin(trips=10)");
  EXPECT_EQ(model.name(), "Spin");
}

}  // namespace
