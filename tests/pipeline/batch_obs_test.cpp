// Observability contract of the batch pipeline: instrumentation must
// never change predictions (bit-identity), metrics must agree with the
// results they summarize, and the progress heartbeat must account for
// every job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "prophet/estimator/backend.hpp"
#include "prophet/models/registry.hpp"
#include "prophet/pipeline/batch.hpp"

namespace {

using prophet::estimator::BackendKind;
using prophet::pipeline::BatchOptions;
using prophet::pipeline::BatchProgress;
using prophet::pipeline::BatchReport;
using prophet::pipeline::BatchRunner;
using prophet::pipeline::ScenarioGrid;

BatchReport run_registry_sweep(BackendKind backend, bool collect_metrics,
                               bool collect_trace, bool isolate = false) {
  BatchOptions options;
  options.threads = 2;
  options.backend = backend;
  options.isolate_jobs = isolate;
  options.collect_metrics = collect_metrics;
  options.collect_trace = collect_trace;
  BatchRunner runner(options);
  for (const auto& name : prophet::models::Registry::builtin().names()) {
    const int index = runner.add_model_reference("@" + name);
    const auto base =
        prophet::models::Registry::builtin().at(name).default_params;
    runner.add_sweep(index, ScenarioGrid::parse("nodes=1,2", base));
  }
  return runner.run();
}

TEST(BatchObservability, InstrumentationOffBitIdentity) {
  // The tentpole contract: enabling metrics + tracing must not move a
  // single bit of any prediction, for every registered model, with both
  // backends live.
  const BatchReport plain = run_registry_sweep(BackendKind::Both, false, false);
  const BatchReport instrumented =
      run_registry_sweep(BackendKind::Both, true, true);
  ASSERT_EQ(plain.results.size(), instrumented.results.size());
  ASSERT_GT(plain.results.size(), 0U);
  for (std::size_t i = 0; i < plain.results.size(); ++i) {
    const auto& a = plain.results[i];
    const auto& b = instrumented.results[i];
    ASSERT_EQ(a.ok, b.ok) << a.model_name;
    // Bit-exact, not approximately equal.
    EXPECT_EQ(a.predicted_time, b.predicted_time) << a.model_name;
    EXPECT_EQ(a.analytic_predicted, b.analytic_predicted) << a.model_name;
    EXPECT_EQ(a.relative_error, b.relative_error) << a.model_name;
    EXPECT_EQ(a.events, b.events) << a.model_name;
  }
}

TEST(BatchObservability, MetricsAgreeWithResults) {
  const BatchReport report = run_registry_sweep(BackendKind::Both, true, false);
  const auto stats = report.stats();
  const auto& m = report.metrics;
  EXPECT_EQ(m.counter_value("batch.jobs"), stats.total);
  EXPECT_EQ(m.counter_value("batch.jobs_ok"), stats.ok);
  EXPECT_EQ(m.counter_value("batch.jobs_failed"), stats.failed);
  EXPECT_EQ(m.counter_value("batch.events"), stats.total_events);
  EXPECT_EQ(m.counter_value("batch.compared"), stats.compared);
  EXPECT_DOUBLE_EQ(m.gauge_value("batch.rel_error_max"), stats.max_rel_error);
  // Cached mode: every ok job was served from the compiled-model cache.
  EXPECT_EQ(m.counter_value("batch.cache_hits"), stats.total);
  EXPECT_EQ(m.counter_value("batch.models_prepared"),
            static_cast<std::uint64_t>(report.models_prepared));
  // Engine counters flowed in from both backends, and lowering stats
  // from the prepare phase.
  EXPECT_GT(m.counter_value("expr.instructions"), 0U);
  EXPECT_GT(m.counter_value("expr.evals"), 0U);
  EXPECT_GT(m.counter_value("sim.runs"), 0U);
  EXPECT_GT(m.counter_value("sim.context_switches"), 0U);
  EXPECT_GT(m.counter_value("analytic.runs"), 0U);
  EXPECT_GT(m.counter_value("analytic.events_replayed"), 0U);
  EXPECT_GT(m.counter_value("lower.nodes"), 0U);
  EXPECT_GT(m.counter_value("lower.expr_programs"), 0U);
  // The three makespan bounds partition the analytic runs.
  EXPECT_EQ(m.counter_value("analytic.schedule_wins") +
                m.counter_value("analytic.capacity_wins") +
                m.counter_value("analytic.critical_wins"),
            m.counter_value("analytic.runs"));
}

TEST(BatchObservability, MetricsOffStillDerivesBatchCells) {
  // Without collect_metrics the registry carries no engine counters, but
  // the batch.* summary cells are always there (summary() reads them).
  const BatchReport report =
      run_registry_sweep(BackendKind::Analytic, false, false);
  EXPECT_EQ(report.metrics.counter_value("batch.jobs"),
            report.results.size());
  EXPECT_EQ(report.metrics.counter_value("expr.instructions"), 0U);
  EXPECT_EQ(report.metrics.counter_value("sim.runs"), 0U);
}

TEST(BatchObservability, IsolatedModeCountsLoweringPerJob) {
  const BatchReport report =
      run_registry_sweep(BackendKind::Analytic, true, false, true);
  const auto stats = report.stats();
  ASSERT_GT(stats.ok, 0U);
  // Every job lowers its own model copy, so lower.* scales with jobs.
  EXPECT_GE(report.metrics.counter_value("lower.expr_programs"), stats.ok);
  // No shared cache in isolated mode.
  EXPECT_EQ(report.metrics.counter_value("batch.cache_hits"), 0U);
}

TEST(BatchObservability, TraceCollectsHostAndSimulatedLanes) {
  const BatchReport report = run_registry_sweep(BackendKind::Both, false, true);
  EXPECT_GT(report.trace.span_count(), 0U);
  const std::string json = report.trace.to_chrome_json();
  // Host lanes: the compile spans and per-job estimate spans.
  EXPECT_NE(json.find("host.compile"), std::string::npos);
  EXPECT_NE(json.find("host.estimate"), std::string::npos);
  // Simulated lanes: one representative timeline per model.
  EXPECT_NE(json.find("(simulated)"), std::string::npos);
  EXPECT_NE(json.find("\"sim."), std::string::npos);
}

TEST(BatchObservability, SummaryNumbersComeFromTheRegistry) {
  const BatchReport report =
      run_registry_sweep(BackendKind::Analytic, false, false);
  const std::string summary = report.summary();
  const std::string jobs =
      std::to_string(report.metrics.counter_value("batch.jobs"));
  EXPECT_NE(summary.find("scenario sweep: " + jobs + " job(s)"),
            std::string::npos)
      << summary;
  const std::string ok =
      std::to_string(report.metrics.counter_value("batch.jobs_ok"));
  EXPECT_NE(summary.find("ok " + ok + " / failed"), std::string::npos)
      << summary;
}

TEST(BatchObservability, ProgressHeartbeatAccountsForEveryJob) {
  BatchOptions options;
  options.threads = 2;
  options.backend = BackendKind::Analytic;
  options.progress_interval_seconds = 0.01;
  std::atomic<int> calls{0};
  std::atomic<int> finals{0};
  std::atomic<std::size_t> last_done{0};
  std::atomic<std::size_t> last_total{0};
  options.on_progress = [&](const BatchProgress& progress) {
    ++calls;
    if (progress.final) {
      ++finals;
      last_done = progress.done;
      last_total = progress.total;
    }
    EXPECT_LE(progress.done, progress.total);
  };
  BatchRunner runner(options);
  const int index = runner.add_model_reference("@kernel6");
  runner.add_sweep(index, ScenarioGrid::parse("np=1..4"));
  const BatchReport report = runner.run();
  EXPECT_EQ(report.results.size(), 4U);
  // Exactly one final callback, reporting every job done.
  EXPECT_EQ(finals.load(), 1);
  EXPECT_GE(calls.load(), 1);
  EXPECT_EQ(last_done.load(), 4U);
  EXPECT_EQ(last_total.load(), 4U);
}

}  // namespace
