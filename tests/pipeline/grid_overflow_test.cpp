// Hostile grid specs: overflowing ranges, absurd axis sizes and
// out-of-domain count parameters must raise structured parse errors
// instead of spinning or silently wrapping.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "prophet/pipeline/scenario.hpp"

namespace {

using prophet::pipeline::ScenarioGrid;

std::string parse_error_of(const std::string& spec) {
  try {
    (void)ScenarioGrid::parse(spec);
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(GridOverflow, GeometricRangeToIntMaxRejected) {
  const std::string message =
      parse_error_of("np=1..9223372036854775807:*2");
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("np"), std::string::npos);
}

TEST(GridOverflow, HugeLinearAxisRejected) {
  const std::string message = parse_error_of("np=1..300000000");
  ASSERT_FALSE(message.empty());
}

TEST(GridOverflow, NonAdvancingGeometricStepRejected) {
  EXPECT_NE(parse_error_of("nn=1..10:*1").find("advanc"),
            std::string::npos);
}

TEST(GridOverflow, CountParameterAboveIntRangeRejected) {
  const std::string message = parse_error_of("np=2147483646..2147483650");
  ASSERT_FALSE(message.empty());
  EXPECT_NE(message.find("overflow"), std::string::npos);
}

TEST(GridOverflow, ZeroCountParameterRejected) {
  EXPECT_FALSE(parse_error_of("np=0..4").empty());
}

TEST(GridOverflow, NonCountAxesMayRangeWide) {
  // cpu_speed is not a process count: wide geometric ranges are fine.
  const auto grid = ScenarioGrid::parse("cpu_speed=1..1048576:*2");
  EXPECT_EQ(grid.size(), 21u);
}

TEST(GridOverflow, SaneGridsStillParse) {
  const auto grid = ScenarioGrid::parse("np=1..8:*2 nodes=1,2");
  EXPECT_EQ(grid.size(), 8u);
}

}  // namespace
