// ScenarioGrid: cross-product expansion and grid-spec parsing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "prophet/pipeline/scenario.hpp"

namespace pipeline = prophet::pipeline;
namespace machine = prophet::machine;

namespace {

TEST(ScenarioGrid, ExpandsCrossProductRowMajor) {
  pipeline::ScenarioGrid grid;
  grid.axis("np", {1, 2, 4}).axis("nodes", {1, 2});
  EXPECT_EQ(grid.size(), 6u);

  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 6u);
  // First axis (np) varies slowest, second (nodes) fastest.
  const int expected_np[] = {1, 1, 2, 2, 4, 4};
  const int expected_nn[] = {1, 2, 1, 2, 1, 2};
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].processes, expected_np[i]) << "scenario " << i;
    EXPECT_EQ(scenarios[i].nodes, expected_nn[i]) << "scenario " << i;
  }
}

TEST(ScenarioGrid, EmptyGridExpandsToBase) {
  machine::SystemParameters base;
  base.processes = 7;
  const pipeline::ScenarioGrid grid(base);
  EXPECT_EQ(grid.size(), 1u);
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].processes, 7);
}

TEST(ScenarioGrid, PreservesBaseParameters) {
  machine::SystemParameters base;
  base.cpu_speed = 2.5;
  pipeline::ScenarioGrid grid(base);
  grid.axis("np", {2});
  const auto scenarios = grid.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].cpu_speed, 2.5);
  EXPECT_EQ(scenarios[0].processes, 2);
}

TEST(ScenarioGrid, ParsesCommaLists) {
  const auto grid = pipeline::ScenarioGrid::parse("np=1,2,4 nodes=1,2");
  EXPECT_EQ(grid.size(), 6u);
  ASSERT_EQ(grid.axes().size(), 2u);
  EXPECT_EQ(grid.axes()[0].name, "np");
  EXPECT_EQ(grid.axes()[0].values, (std::vector<double>{1, 2, 4}));
  EXPECT_EQ(grid.axes()[1].values, (std::vector<double>{1, 2}));
}

TEST(ScenarioGrid, ParsesLinearRanges) {
  const auto grid = pipeline::ScenarioGrid::parse("np=1..4;ppn=2..8:+3");
  ASSERT_EQ(grid.axes().size(), 2u);
  EXPECT_EQ(grid.axes()[0].values, (std::vector<double>{1, 2, 3, 4}));
  EXPECT_EQ(grid.axes()[1].values, (std::vector<double>{2, 5, 8}));
}

TEST(ScenarioGrid, ParsesGeometricRanges) {
  const auto grid = pipeline::ScenarioGrid::parse("np=1..16:*2");
  ASSERT_EQ(grid.axes().size(), 1u);
  EXPECT_EQ(grid.axes()[0].values, (std::vector<double>{1, 2, 4, 8, 16}));
}

TEST(ScenarioGrid, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np"), std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np="), std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("=1,2"), std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=a,b"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1,,2"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=4..1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:*1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:+0"),
               std::invalid_argument);
}

TEST(ScenarioGrid, ParseRejectsEmptyAxes) {
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np= nodes=1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=;nodes=1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1,"),
               std::invalid_argument);
}

TEST(ScenarioGrid, ParseRejectsReversedRanges) {
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=8..1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=8..1:*2"),
               std::invalid_argument);
  // A single-point range is not reversed.
  EXPECT_EQ(pipeline::ScenarioGrid::parse("np=4..4").axes()[0].values,
            (std::vector<double>{4}));
}

TEST(ScenarioGrid, ParseRejectsNonAdvancingSteps) {
  // Multiplicative factor of 1 or 0 (or negative) never advances.
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:*1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:*0"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:*-2"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:+0"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:+-1"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1..8:"),
               std::invalid_argument);
  // A geometric range must start above zero to advance.
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=0..8:*2"),
               std::invalid_argument);
}

TEST(ScenarioGrid, RejectsDuplicateAxisNames) {
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1,2 np=4"),
               std::invalid_argument);
  // Aliases of the same SP field are duplicates too.
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np=1,2 processes=4"),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::parse("nt=1 threads_per_process=2"),
               std::invalid_argument);
  pipeline::ScenarioGrid grid;
  grid.axis("np", {1, 2});
  EXPECT_THROW(grid.axis("processes", {4}), std::invalid_argument);
}

TEST(ScenarioGrid, ParseHandlesWhitespace) {
  const auto grid =
      pipeline::ScenarioGrid::parse("  np=1,2\t\t nodes=1,2 ;; ppn=2  ");
  ASSERT_EQ(grid.axes().size(), 3u);
  EXPECT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid.axes()[0].name, "np");
  EXPECT_EQ(grid.axes()[2].name, "ppn");
  // An all-whitespace spec is the empty grid, not an error.
  EXPECT_EQ(pipeline::ScenarioGrid::parse(" \t ; ").size(), 1u);
  // Whitespace inside an axis splits the token and must be rejected.
  EXPECT_THROW(pipeline::ScenarioGrid::parse("np = 1,2"),
               std::invalid_argument);
}

TEST(ScenarioGrid, AppliesAliasesAndHardwareFields) {
  machine::SystemParameters params;
  pipeline::ScenarioGrid::apply(params, "processes", 8);
  pipeline::ScenarioGrid::apply(params, "nn", 4);
  pipeline::ScenarioGrid::apply(params, "cpu_speed", 0.5);
  EXPECT_EQ(params.processes, 8);
  EXPECT_EQ(params.nodes, 4);
  EXPECT_DOUBLE_EQ(params.cpu_speed, 0.5);
  EXPECT_THROW(pipeline::ScenarioGrid::apply(params, "frobnicate", 1),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::apply(params, "np", 0),
               std::invalid_argument);
  // Counts past INT_MAX are rejected, not narrowed.
  EXPECT_THROW(pipeline::ScenarioGrid::apply(params, "np", 3e9),
               std::invalid_argument);
  EXPECT_THROW(pipeline::ScenarioGrid::apply(params, "np", 1e300),
               std::invalid_argument);
  EXPECT_TRUE(pipeline::ScenarioGrid::is_parameter("ppn"));
  EXPECT_FALSE(pipeline::ScenarioGrid::is_parameter("frobnicate"));
}

}  // namespace
