// StepBuilder structured construction + ModelBuilder validation.
//
// The misuse cases mirror the classic authoring mistakes: scopes left
// open, steps outside an arm, duplicate activity names, one-sided
// communication.  Each must surface as a BuildDiagnostic / BuildError,
// never as a structurally malformed model.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "prophet/check/checker.hpp"
#include "prophet/uml/builder.hpp"
#include "prophet/uml/model.hpp"
#include "prophet/uml/profile.hpp"

namespace uml = prophet::uml;

namespace {

const uml::Node* find_node(const uml::Model& model, std::string_view name) {
  for (const auto& diagram : model.diagrams()) {
    for (const auto& node : diagram->nodes()) {
      if (node->name() == name) {
        return node.get();
      }
    }
  }
  return nullptr;
}

bool any_diagnostic_contains(const std::vector<uml::BuildDiagnostic>& found,
                             std::string_view text) {
  return std::any_of(found.begin(), found.end(),
                     [text](const uml::BuildDiagnostic& diagnostic) {
                       return diagnostic.message.find(text) !=
                              std::string::npos;
                     });
}

TEST(StepBuilder, LinearChainBuildsCheckerCleanModel) {
  uml::ModelBuilder mb("Chain");
  mb.global("N", uml::VariableType::Integer, "8");
  mb.function("F", {}, "0.001 * N");
  uml::StepBuilder steps(mb, "main");
  steps.compute("A", "F()").compute("B", "2 * F()").done();
  const uml::Model model = std::move(mb).build();

  const prophet::check::ModelChecker checker;
  const auto diagnostics = checker.check(model);
  EXPECT_TRUE(diagnostics.ok()) << diagnostics.to_string();
  ASSERT_NE(model.main_diagram(), nullptr);
  // Initial -> A -> B -> Final.
  EXPECT_EQ(model.main_diagram()->node_count(), 4u);
  EXPECT_EQ(model.main_diagram()->edge_count(), 3u);
}

TEST(StepBuilder, LoopScopeCreatesBodyDiagram) {
  uml::ModelBuilder mb("Loops");
  uml::StepBuilder steps(mb, "main");
  steps.begin_loop("Outer", "4", "i")
      .begin_loop("Inner", "i + 1", "k")
      .compute("W", "1e-6")
      .end_loop()
      .end_loop()
      .done();
  const uml::Model model = std::move(mb).build();

  const uml::Node* outer = find_node(model, "Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->kind(), uml::NodeKind::Loop);
  EXPECT_EQ(outer->tag_string(uml::tag::kIterations), "4");
  const auto* body = model.diagram(outer->subdiagram_id());
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->name(), "Outer.body");
  const uml::Node* inner = find_node(model, "Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->tag_string(uml::tag::kLoopVar), "k");

  const prophet::check::ModelChecker checker;
  EXPECT_TRUE(checker.check(model).ok());
}

TEST(StepBuilder, BranchScopeWiresGuardsAndProbTags) {
  uml::ModelBuilder mb("Branches");
  uml::StepBuilder steps(mb, "main");
  steps.compute("Pre", "1e-3")
      .begin_branch("Kind")
      .when("pid % 4 == 0", 0.25)
      .compute("Heavy", "4e-3")
      .otherwise(0.75)
      .compute("Light", "1e-3")
      .end_branch()
      .compute("Post", "1e-3")
      .done();
  const uml::Model model = std::move(mb).build();

  const auto* main = model.main_diagram();
  ASSERT_NE(main, nullptr);
  const uml::Node* decision = find_node(model, "Kind");
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(decision->kind(), uml::NodeKind::Decision);
  const auto outgoing = main->outgoing(decision->id());
  ASSERT_EQ(outgoing.size(), 2u);
  EXPECT_EQ(outgoing[0]->guard(), "pid % 4 == 0");
  EXPECT_EQ(outgoing[0]->tag_number(uml::tag::kProb), 0.25);
  EXPECT_TRUE(outgoing[1]->is_else());
  EXPECT_EQ(outgoing[1]->tag_number(uml::tag::kProb), 0.75);

  const prophet::check::ModelChecker checker;
  EXPECT_TRUE(checker.check(model).ok());
}

TEST(StepBuilder, EmptyBranchArmGoesStraightToMerge) {
  uml::ModelBuilder mb("EmptyArm");
  uml::StepBuilder steps(mb, "main");
  steps.begin_branch()
      .when("pid == 0")
      .compute("RootWork", "1e-3")
      .otherwise()  // no steps: decision -> merge directly
      .end_branch()
      .done();
  const uml::Model model = std::move(mb).build();

  const auto* main = model.main_diagram();
  const uml::Node* work = find_node(model, "RootWork");
  ASSERT_NE(work, nullptr);
  // The else edge leads from the decision straight to the merge.
  bool found_else_to_merge = false;
  for (const auto& edge : main->edges()) {
    if (edge->is_else()) {
      const uml::Node* target = main->node(edge->target());
      ASSERT_NE(target, nullptr);
      EXPECT_EQ(target->kind(), uml::NodeKind::Merge);
      found_else_to_merge = true;
    }
  }
  EXPECT_TRUE(found_else_to_merge);

  const prophet::check::ModelChecker checker;
  EXPECT_TRUE(checker.check(model).ok());
}

TEST(StepBuilder, SpmdRegionScopeEmitsOmpParallel) {
  uml::ModelBuilder mb("Region");
  uml::StepBuilder steps(mb, "main");
  steps.begin_spmd("Par", "4")
      .omp_for("Work", "1024", "1e-6")
      .end_spmd()
      .done();
  const uml::Model model = std::move(mb).build();

  const uml::Node* region = find_node(model, "Par");
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->stereotype(), uml::stereo::kOmpParallel);
  EXPECT_EQ(region->tag_string(uml::tag::kNumThreads), "4");
  const auto* body = model.diagram(region->subdiagram_id());
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->name(), "Par.body");
}

TEST(StepBuilder, MatchedSendRecvPairValidates) {
  uml::ModelBuilder mb("Comm");
  uml::StepBuilder steps(mb, "main");
  steps.begin_branch()
      .when("pid == 0")
      .send("Ping", "1", "1024", 7)
      .otherwise()
      .recv("PingRecv", "0", "1024", 7)
      .end_branch()
      .done();
  EXPECT_NO_THROW((void)std::move(mb).build());
}

// --- Misuse diagnostics ---------------------------------------------------

TEST(BuilderValidation, UnclosedLoopScopeIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.begin_loop("L", "4").compute("W", "1e-6").done();  // no end_loop()
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(), "unclosed loop scope"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, UnclosedBranchScopeIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.begin_branch("D").when("pid == 0").compute("W", "1e-6").done();
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(), "unclosed branch scope"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, MismatchedEndLoopIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.compute("W", "1e-6").end_loop().done();
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(),
                                      "end_loop() without an open loop"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, StepBeforeWhenIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.begin_branch().compute("Stray", "1e-6").end_branch().done();
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(),
                                      "before when()/otherwise()"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, WhenOutsideBranchIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.when("pid == 0").done();
  EXPECT_TRUE(
      any_diagnostic_contains(mb.validate(), "when() outside a branch"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, UnfinishedSequenceIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.compute("W", "1e-6");  // no done()
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(),
                                      "never finished with done()"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, DuplicateDiagramNamesAreAnError) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder a = mb.diagram("stage");
  uml::DiagramBuilder b = mb.diagram("stage");
  (void)a;
  (void)b;
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(),
                                      "duplicate activity diagram name"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, SendWithoutRecvPartnerIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.send("Lonely", "1", "64", 3).done();
  const auto diagnostics = mb.validate();
  EXPECT_TRUE(any_diagnostic_contains(diagnostics, "no matching recv"));
  EXPECT_TRUE(any_diagnostic_contains(diagnostics, "message tag 3"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, RecvWithoutSendPartnerIsAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.recv("Orphan", "0", "64").done();
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(), "no matching send"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, MismatchedMessageTagsAreAnError) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.begin_branch()
      .when("pid == 0")
      .send("Ping", "1", "64", 1)
      .otherwise()
      .recv("PingRecv", "0", "64", 2)  // wrong tag: never matches
      .end_branch()
      .done();
  const auto diagnostics = mb.validate();
  EXPECT_TRUE(any_diagnostic_contains(diagnostics, "no matching recv"));
  EXPECT_TRUE(any_diagnostic_contains(diagnostics, "no matching send"));
}

TEST(BuilderValidation, ProbOutsideUnitIntervalIsAnError) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef init = d.initial();
  uml::NodeRef decision = d.decision();
  uml::NodeRef yes = d.action("Y").cost("1e-6");
  uml::NodeRef no = d.action("N").cost("1e-6");
  uml::NodeRef merge = d.merge();
  uml::NodeRef fin = d.final_node();
  d.flow(init, decision);
  d.flow(decision, yes, "pid == 0").prob(1.5);
  d.flow(decision, no, "else");
  d.flow(yes, merge);
  d.flow(no, merge);
  d.flow(merge, fin);
  EXPECT_TRUE(any_diagnostic_contains(mb.validate(), "outside [0, 1]"));
  EXPECT_THROW((void)std::move(mb).build(), uml::BuildError);
}

TEST(BuilderValidation, BuildErrorAggregatesDiagnostics) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.send("Lonely", "1", "64").end_loop().done();
  try {
    (void)std::move(mb).build();
    FAIL() << "build() should have thrown";
  } catch (const uml::BuildError& error) {
    EXPECT_GE(error.diagnostics().size(), 2u);
    EXPECT_NE(std::string(error.what()).find("model construction failed"),
              std::string::npos);
  }
}

TEST(BuilderValidation, BuildUncheckedBypassesValidation) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.send("Lonely", "1", "64").done();
  EXPECT_NO_THROW((void)std::move(mb).build_unchecked());
}

TEST(BuilderValidation, CleanModelHasNoDiagnostics) {
  uml::ModelBuilder mb("M");
  uml::StepBuilder steps(mb, "main");
  steps.compute("W", "1e-6").done();
  EXPECT_TRUE(mb.validate().empty());
  EXPECT_NO_THROW((void)std::move(mb).build());
}

}  // namespace
