// UML metamodel: tagged values, profiles, elements, diagrams, builder.
#include <gtest/gtest.h>

#include "prophet/uml/builder.hpp"
#include "prophet/uml/model.hpp"
#include "prophet/uml/profile.hpp"
#include "prophet/uml/sysparams.hpp"
#include "prophet/uml/tags.hpp"

namespace uml = prophet::uml;

namespace {

TEST(Tags, TypeOfValue) {
  EXPECT_EQ(uml::type_of(uml::TagValue(std::int64_t{3})),
            uml::TagType::Integer);
  EXPECT_EQ(uml::type_of(uml::TagValue(2.5)), uml::TagType::Real);
  EXPECT_EQ(uml::type_of(uml::TagValue(std::string("x"))),
            uml::TagType::String);
  EXPECT_EQ(uml::type_of(uml::TagValue(true)), uml::TagType::Boolean);
}

TEST(Tags, ToString) {
  EXPECT_EQ(uml::to_string(uml::TagValue(std::int64_t{10})), "10");
  EXPECT_EQ(uml::to_string(uml::TagValue(std::string("SAMPLE"))), "SAMPLE");
  EXPECT_EQ(uml::to_string(uml::TagValue(true)), "true");
}

TEST(Tags, ParseRoundTrip) {
  for (const auto& [type, text] :
       {std::pair{uml::TagType::Integer, "42"},
        std::pair{uml::TagType::Real, "2.5"},
        std::pair{uml::TagType::String, "hello"},
        std::pair{uml::TagType::Boolean, "true"}}) {
    const auto value = uml::parse_tag_value(type, text);
    ASSERT_TRUE(value.has_value()) << text;
    EXPECT_EQ(uml::type_of(*value), type);
    EXPECT_EQ(uml::to_string(*value), text);
  }
}

TEST(Tags, ParseRejectsNonConforming) {
  EXPECT_FALSE(uml::parse_tag_value(uml::TagType::Integer, "abc"));
  EXPECT_FALSE(uml::parse_tag_value(uml::TagType::Integer, "1.5"));
  EXPECT_FALSE(uml::parse_tag_value(uml::TagType::Real, "zz"));
  EXPECT_FALSE(uml::parse_tag_value(uml::TagType::Boolean, "maybe"));
}

TEST(Profile, Fig1ActionPlusDefinition) {
  // Fig. 1a: <<action+>> extends Action with id/type/time.
  const uml::Profile profile = uml::standard_profile();
  const uml::Stereotype* action = profile.find(uml::stereo::kActionPlus);
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(action->base(), uml::Metaclass::Action);
  ASSERT_NE(action->tag("id"), nullptr);
  EXPECT_EQ(action->tag("id")->type, uml::TagType::Integer);
  ASSERT_NE(action->tag("type"), nullptr);
  EXPECT_EQ(action->tag("type")->type, uml::TagType::String);
  ASSERT_NE(action->tag("time"), nullptr);
  EXPECT_EQ(action->tag("time")->type, uml::TagType::Real);
}

TEST(Profile, StandardProfileCoversPaperBuildingBlocks) {
  const uml::Profile profile = uml::standard_profile();
  for (const auto name :
       {uml::stereo::kActionPlus, uml::stereo::kActivityPlus,
        uml::stereo::kLoopPlus, uml::stereo::kSend, uml::stereo::kRecv,
        uml::stereo::kBarrier, uml::stereo::kBroadcast, uml::stereo::kReduce,
        uml::stereo::kAllReduce, uml::stereo::kScatter, uml::stereo::kGather,
        uml::stereo::kOmpParallel, uml::stereo::kOmpFor,
        uml::stereo::kOmpCritical, uml::stereo::kOmpBarrier}) {
    EXPECT_NE(profile.find(name), nullptr) << name;
  }
}

TEST(Profile, TagsCanBeArbitrarilyExtended) {
  // "The set of tag definitions ... can be arbitrarily extended" (Sec 2.1).
  uml::Profile profile = uml::standard_profile();
  auto custom = uml::Stereotype("gpu+", uml::Metaclass::Action,
                                {{"kernel", uml::TagType::String, true}});
  profile.add(std::move(custom));
  ASSERT_NE(profile.find("gpu+"), nullptr);
  EXPECT_TRUE(profile.find("gpu+")->tag("kernel")->required);
}

TEST(Element, Fig1UsageExample) {
  // Fig. 1b: SampleAction with {id = 1, type = SAMPLE, time = 10}.
  uml::Node node("n1", "SampleAction", uml::NodeKind::Action);
  node.set_stereotype(std::string(uml::stereo::kActionPlus));
  node.set_tag("id", uml::TagValue(std::int64_t{1}));
  node.set_tag("type", uml::TagValue(std::string("SAMPLE")));
  node.set_tag("time", uml::TagValue(10.0));
  EXPECT_EQ(node.tag_number("id"), 1.0);
  EXPECT_EQ(node.tag_string("type"), "SAMPLE");
  EXPECT_EQ(node.tag_number("time"), 10.0);
  EXPECT_TRUE(node.has_stereotype());
}

TEST(Element, SetTagOverwrites) {
  uml::Node node("n1", "A", uml::NodeKind::Action);
  node.set_tag("k", uml::TagValue(1.0));
  node.set_tag("k", uml::TagValue(2.0));
  EXPECT_EQ(node.tags().size(), 1u);
  EXPECT_EQ(node.tag_number("k"), 2.0);
  EXPECT_TRUE(node.remove_tag("k"));
  EXPECT_FALSE(node.has_tag("k"));
}

TEST(Diagram, EdgesAndLookup) {
  uml::ActivityDiagram diagram("d1", "main");
  diagram.add_node(
      std::make_unique<uml::Node>("n1", "I", uml::NodeKind::Initial));
  diagram.add_node(
      std::make_unique<uml::Node>("n2", "A", uml::NodeKind::Action));
  diagram.add_edge(std::make_unique<uml::ControlFlow>("f1", "n1", "n2"));
  EXPECT_EQ(diagram.node_count(), 2u);
  EXPECT_EQ(diagram.initial()->id(), "n1");
  ASSERT_EQ(diagram.outgoing("n1").size(), 1u);
  EXPECT_EQ(diagram.outgoing("n1")[0]->target(), "n2");
  EXPECT_EQ(diagram.incoming("n2").size(), 1u);
  EXPECT_EQ(diagram.node("zz"), nullptr);
}

TEST(Diagram, GuardClassification) {
  uml::ControlFlow guarded("f1", "a", "b", "GV > 0");
  uml::ControlFlow else_edge("f2", "a", "c", "else");
  uml::ControlFlow plain("f3", "b", "c");
  EXPECT_TRUE(guarded.has_guard());
  EXPECT_FALSE(guarded.is_else());
  EXPECT_TRUE(else_edge.is_else());
  EXPECT_FALSE(plain.has_guard());
}

TEST(Builder, GeneratesDeterministicIds) {
  auto build = [] {
    uml::ModelBuilder mb("M");
    uml::DiagramBuilder d = mb.diagram("main");
    uml::NodeRef a = d.action("A");
    uml::NodeRef b = d.action("B");
    d.flow(a, b);
    return std::move(mb).build();
  };
  const uml::Model first = build();
  const uml::Model second = build();
  ASSERT_EQ(first.diagrams().size(), 1u);
  EXPECT_EQ(first.diagrams()[0]->id(), second.diagrams()[0]->id());
  EXPECT_EQ(first.diagrams()[0]->nodes()[0]->id(),
            second.diagrams()[0]->nodes()[0]->id());
}

TEST(Builder, FirstDiagramBecomesMain) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d1 = mb.diagram("one");
  uml::DiagramBuilder d2 = mb.diagram("two");
  (void)d2;
  const uml::Model model = std::move(mb).build();
  EXPECT_EQ(model.main_diagram_id(), d1.id());
}

TEST(Builder, CommunicationElementsCarryTags) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef send = d.send("S", "pid + 1", "1024", 7);
  EXPECT_EQ(send.node().stereotype(), uml::stereo::kSend);
  EXPECT_EQ(send.node().tag_string(uml::tag::kDest), "pid + 1");
  EXPECT_EQ(send.node().tag_string(uml::tag::kSize), "1024");
  EXPECT_EQ(send.node().tag_number(uml::tag::kMsgTag), 7.0);
  uml::NodeRef reduce = d.reduce("R", "0", "8", "sum");
  EXPECT_EQ(reduce.node().tag_string(uml::tag::kOp), "sum");
}

TEST(Builder, LoopReferencesBodyDiagram) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder body = mb.diagram("body");
  uml::DiagramBuilder main = mb.diagram("main");
  uml::NodeRef loop = main.loop("L", body, "N", "i");
  EXPECT_EQ(loop.node().kind(), uml::NodeKind::Loop);
  EXPECT_EQ(loop.node().subdiagram_id(), body.id());
  EXPECT_EQ(loop.node().tag_string(uml::tag::kIterations), "N");
  EXPECT_EQ(loop.node().tag_string(uml::tag::kLoopVar), "i");
}

TEST(Model, VariableScopes) {
  uml::ModelBuilder mb("M");
  mb.global("G", uml::VariableType::Real, "1");
  mb.local("L", uml::VariableType::Integer, "2");
  const uml::Model model = std::move(mb).build();
  EXPECT_EQ(model.globals().size(), 1u);
  EXPECT_EQ(model.locals().size(), 1u);
  ASSERT_NE(model.variable("G"), nullptr);
  EXPECT_EQ(model.variable("G")->scope, uml::VariableScope::Global);
  EXPECT_EQ(model.variable("L")->type, uml::VariableType::Integer);
  EXPECT_EQ(model.variable("missing"), nullptr);
}

TEST(Model, CostFunctionLookup) {
  uml::ModelBuilder mb("M");
  mb.function("F", {"x"}, "x * 2");
  const uml::Model model = std::move(mb).build();
  ASSERT_NE(model.cost_function("F"), nullptr);
  EXPECT_EQ(model.cost_function("F")->parameters.size(), 1u);
  EXPECT_EQ(model.cost_function("G"), nullptr);
}

TEST(Model, ElementCount) {
  uml::ModelBuilder mb("M");
  uml::DiagramBuilder d = mb.diagram("main");
  uml::NodeRef a = d.initial();
  uml::NodeRef b = d.action("A");
  d.flow(a, b);
  const uml::Model model = std::move(mb).build();
  // 1 diagram + 2 nodes + 1 edge.
  EXPECT_EQ(model.element_count(), 4u);
}

TEST(SysParams, Names) {
  EXPECT_TRUE(uml::is_system_parameter("pid"));
  EXPECT_TRUE(uml::is_system_parameter("np"));
  EXPECT_TRUE(uml::is_system_parameter("ppn"));
  EXPECT_FALSE(uml::is_system_parameter("P"));
  EXPECT_EQ(uml::system_parameter_names().size(), 7u);
}

TEST(ExpressionTags, PerStereotype) {
  EXPECT_EQ(uml::expression_tags(uml::stereo::kActionPlus).size(), 1u);
  EXPECT_EQ(uml::expression_tags(uml::stereo::kSend).size(), 2u);
  EXPECT_EQ(uml::expression_tags(uml::stereo::kOmpFor).size(), 2u);
  EXPECT_TRUE(uml::expression_tags("unknown").empty());
  EXPECT_TRUE(uml::expression_tags(uml::stereo::kBarrier).empty());
}

}  // namespace
